//===- bench/spbench.cpp - Telemetry pipeline + regression gate -----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Runs a subset of the figure/table/micro benchmark binaries plus an
// in-process deterministic telemetry pass, and writes one versioned
// BENCH_<date>.json document (schema "spbench-v1"):
//
//   spbench -smoke 1                               # CI smoke subset
//   spbench -workloads gzip,gcc -benches fig5_icount2
//   spbench -smoke 1 -baseline benchmarks/BENCH_2026-08-06.json
//
// With -baseline the run is diffed against the committed document and the
// process exits 2 when any deterministic metric (slowdown-vs-native or an
// attribution share) regresses past -maxreg. Whole-run host wall seconds
// are recorded for context but never gated against the baseline — only
// virtual-time metrics are deterministic across machines.
//
// The host-parallel gate (-hostgate, default on) is the one wall-clock
// check: each telemetry workload's SuperPin run is re-timed serial vs
// -spmp (min of -hostsamples samples each) on *this* machine. On a
// multi-core host the -spmp run must beat serial; on a single-core host
// (nothing to parallelize onto) it must stay within -maxhostover of
// serial. Either failure — or any virtual-tick divergence between the
// serial and -spmp runs, which is a determinism bug on every machine —
// exits 2.
//
// The per-workload attribution profile is also written as a folded-stack
// file (<out>.folded) loadable by flamegraph.pl-style tools.
//
//===----------------------------------------------------------------------===//

#include "obs/Doctor.h"
#include "obs/HostTraceRecorder.h"
#include "obs/Metrics.h"
#include "pin/Runner.h"
#include "prof/Bench.h"
#include "prof/Profile.h"
#include "superpin/Engine.h"
#include "superpin/Reporting.h"
#include "support/CommandLine.h"
#include "support/Json.h"
#include "support/RawOstream.h"
#include "support/Statistic.h"
#include "support/StringExtras.h"
#include "tools/Icount.h"
#include "workloads/Spec2000.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

using namespace spin;

namespace {

/// One external benchmark binary's collected run.
struct BenchRun {
  std::string Name;
  std::string Command;
  int ExitCode = 0;
  double HostSeconds = 0.0;
  std::optional<JsonValue> Output; ///< parsed -json payload, when it parsed
  std::string ParseError;
};

/// One workload's deterministic in-process telemetry.
struct WorkloadRun {
  std::string Name;
  os::Ticks NativeTicks = 0;
  os::Ticks PinTicks = 0;
  os::Ticks SpTicks = 0;
  double SlowdownPin = 0.0;
  double SlowdownSp = 0.0;
  double HostSeconds = 0.0;
  // Host-parallel wall-time comparison (-spmp): min-of-N wall seconds of
  // the same SuperPin run serial vs on HostWorkers worker threads, plus
  // the virtual-tick parity check between the two (must always hold).
  unsigned HostWorkers = 0;
  double SerialSpSeconds = 0.0;
  double ParallelSpSeconds = 0.0;
  bool HostTicksMatch = true;
  // Pool wall-time attribution from a separate instrumented -spmp run
  // (the timed samples above run with the recorder detached). Shares of
  // summed worker lifetime; machine-dependent, never gated on.
  double HostBodyShare = 0.0;
  double HostUtilizationPct = 0.0;
  std::string HostDominantStall;
  // spin_doctor critical-path diagnosis of the profiled SuperPin run,
  // plus the predicted-vs-actual check: the Amdahl model's wall at 2x
  // parallelism against a real re-run at doubled -spslices (both
  // deterministic virtual ticks, so the baseline could gate them).
  obs::DoctorReport Doctor;
  os::Ticks ActualWall2x = 0;
  double ActualSpeedup2x = 0.0;
  prof::ProfileCollector Profile;
  StatisticRegistry Metrics;
};

double elapsedSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

std::vector<std::string> splitCommaList(const std::string &Spec) {
  std::vector<std::string> Items;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    if (Comma > Pos)
      Items.push_back(Spec.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Items;
}

/// Runs \p Command capturing stdout; returns the captured text and stores
/// the exit code.
std::string runCommand(const std::string &Command, int &ExitCode) {
  std::string Out;
  std::FILE *P = popen(Command.c_str(), "r");
  if (!P) {
    ExitCode = -1;
    return Out;
  }
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int Status = pclose(P);
  ExitCode = Status < 0 ? -1 : (Status >> 8) & 0xff;
  return Out;
}

/// Extracts the JSON payload from a bench binary's stdout. The figure and
/// table binaries print a human title line, then the JSON array, then a
/// paper-reference note; micro_* binaries (google-benchmark) print one
/// JSON object. Returns the substring from the first '[' or '{' to its
/// matching last ']' or '}'.
std::string extractJsonPayload(const std::string &Text) {
  size_t ArrStart = Text.find('[');
  size_t ObjStart = Text.find('{');
  size_t Start = std::min(ArrStart == std::string::npos ? Text.size()
                                                        : ArrStart,
                          ObjStart == std::string::npos ? Text.size()
                                                        : ObjStart);
  if (Start == Text.size())
    return std::string();
  char Close = Text[Start] == '[' ? ']' : '}';
  size_t End = Text.rfind(Close);
  if (End == std::string::npos || End < Start)
    return std::string();
  return Text.substr(Start, End - Start + 1);
}

/// Re-emits a parsed JsonValue through a JsonWriter (used to embed the
/// external benches' payloads and the spmetrics documents).
void writeJsonValue(JsonWriter &W, const JsonValue &V) {
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    W.value("null"); // the writer has no null; keep the slot readable
    break;
  case JsonValue::Kind::Bool:
    W.value(V.asBool());
    break;
  case JsonValue::Kind::UInt:
    W.value(V.asUInt());
    break;
  case JsonValue::Kind::Int:
    W.value(V.asInt());
    break;
  case JsonValue::Kind::Double:
    W.value(V.asDouble());
    break;
  case JsonValue::Kind::String:
    W.value(V.asString());
    break;
  case JsonValue::Kind::Array:
    W.beginArray();
    for (const JsonValue &E : V.array())
      writeJsonValue(W, E);
    W.endArray();
    break;
  case JsonValue::Kind::Object:
    W.beginObject();
    for (const auto &[K, M] : V.members()) {
      W.key(K);
      writeJsonValue(W, M);
    }
    W.endObject();
    break;
  }
}

std::string currentDate() {
  std::time_t T = std::time(nullptr);
  std::tm Tm = *std::localtime(&T);
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%04d-%02d-%02d", Tm.tm_year + 1900,
                Tm.tm_mon + 1, Tm.tm_mday);
  return Buf;
}

std::string gitSha() {
  int Exit = 0;
  std::string Out =
      runCommand("git rev-parse --short HEAD 2>/dev/null", Exit);
  while (!Out.empty() && (Out.back() == '\n' || Out.back() == '\r'))
    Out.pop_back();
  return (Exit == 0 && !Out.empty()) ? Out : "unknown";
}

std::optional<std::string> readFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return std::nullopt;
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  return Text;
}

void writeFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    errs() << "error: cannot open '" << Path << "' for writing\n";
    std::exit(1);
  }
  std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
}

const workloads::WorkloadInfo *lookupWorkload(const std::string &Name) {
  for (const workloads::WorkloadInfo &Info : workloads::spec2000Suite())
    if (Name == Info.Name)
      return &Info;
  return nullptr;
}

os::Ticks workloadInstCost(const os::CostModel &Model,
                           const workloads::WorkloadInfo &Info) {
  return static_cast<os::Ticks>(
      Info.Cpi * static_cast<double>(Model.TicksPerInst) + 0.5);
}

/// Runs the native / serial-Pin / SuperPin triple with the attribution
/// profiler attached to the instrumented runs, then re-times the SuperPin
/// run serial vs -spmp \p HostWorkers (min of \p HostSamples wall-clock
/// samples each; the profiler is detached so timing measures the engine,
/// not attribution bookkeeping).
WorkloadRun runWorkload(const workloads::WorkloadInfo &Info, double Scale,
                        const os::CostModel &Model, unsigned HostWorkers,
                        unsigned HostSamples) {
  WorkloadRun R;
  R.Name = Info.Name;
  auto Start = std::chrono::steady_clock::now();

  vm::Program Prog = workloads::buildWorkload(Info, Scale);
  os::Ticks Cost = workloadInstCost(Model, Info);
  R.NativeTicks = pin::runNative(Prog, Model, Cost).WallTicks;
  R.PinTicks =
      pin::runSerialPin(Prog, Model, Cost,
                        tools::makeIcountTool(tools::IcountGranularity::BasicBlock))
          .WallTicks;

  sp::SpOptions Opts;
  Opts.Cpi = Info.Cpi;
  Opts.Profile = &R.Profile;
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog, tools::makeIcountTool(tools::IcountGranularity::BasicBlock), Opts,
      Model);
  R.SpTicks = Rep.WallTicks;

  if (R.NativeTicks > 0) {
    R.SlowdownPin = static_cast<double>(R.PinTicks) /
                    static_cast<double>(R.NativeTicks);
    R.SlowdownSp = static_cast<double>(R.SpTicks) /
                   static_cast<double>(R.NativeTicks);
  }
  sp::exportStatistics(Rep, R.Metrics);
  R.Profile.exportStatistics(R.Metrics);

  // Doctor diagnosis of the profiled run, then the honesty check: re-run
  // with the parallelism knob actually doubled and compare the measured
  // wall against the Amdahl prediction. Virtual ticks are deterministic,
  // so predicted-vs-actual is a property of the model, not the machine.
  R.Doctor = obs::diagnose(sp::doctorInput(Rep, Opts));
  {
    sp::SpOptions Opts2x;
    Opts2x.Cpi = Info.Cpi;
    Opts2x.MaxSlices = Opts.MaxSlices * 2;
    sp::SpRunReport Rep2x = sp::runSuperPin(
        Prog, tools::makeIcountTool(tools::IcountGranularity::BasicBlock),
        Opts2x, Model);
    R.ActualWall2x = Rep2x.WallTicks;
    if (Rep2x.WallTicks)
      R.ActualSpeedup2x = static_cast<double>(R.SpTicks) /
                          static_cast<double>(Rep2x.WallTicks);
  }

  if (HostWorkers) {
    R.HostWorkers = HostWorkers;
    auto TimedSp = [&](unsigned Workers, os::Ticks &TicksOut) {
      sp::SpOptions TimedOpts;
      TimedOpts.Cpi = Info.Cpi;
      TimedOpts.HostWorkers = Workers;
      auto T0 = std::chrono::steady_clock::now();
      sp::SpRunReport TimedRep = sp::runSuperPin(
          Prog, tools::makeIcountTool(tools::IcountGranularity::BasicBlock),
          TimedOpts, Model);
      TicksOut = TimedRep.WallTicks;
      return elapsedSince(T0);
    };
    R.SerialSpSeconds = R.ParallelSpSeconds = 1e30;
    for (unsigned I = 0; I < HostSamples; ++I) {
      os::Ticks SerialTicks = 0, ParallelTicks = 0;
      R.SerialSpSeconds =
          std::min(R.SerialSpSeconds, TimedSp(0, SerialTicks));
      R.ParallelSpSeconds =
          std::min(R.ParallelSpSeconds, TimedSp(HostWorkers, ParallelTicks));
      // The -spmp contract: host workers never change the virtual
      // timeline. A mismatch is a determinism bug, gated hard below.
      if (SerialTicks != R.SpTicks || ParallelTicks != R.SpTicks)
        R.HostTicksMatch = false;
    }
    // One more -spmp run with the wall-clock recorder attached, outside
    // the timed samples, to attribute where the pool's time went.
    {
      obs::HostTraceRecorder HostTrace;
      sp::SpOptions AttrOpts;
      AttrOpts.Cpi = Info.Cpi;
      AttrOpts.HostWorkers = HostWorkers;
      AttrOpts.HostTrace = &HostTrace;
      sp::SpRunReport AttrRep = sp::runSuperPin(
          Prog, tools::makeIcountTool(tools::IcountGranularity::BasicBlock),
          AttrOpts, Model);
      const obs::HostAttribution &Attr = AttrRep.HostAttr;
      uint64_t Life = 0, Body = 0;
      for (const obs::HostLaneAttribution &L : Attr.Workers) {
        Life += L.LifetimeNs;
        Body += L.BodyNs;
      }
      if (Life) {
        R.HostBodyShare = static_cast<double>(Body) /
                          static_cast<double>(Life);
        R.HostUtilizationPct = 100.0 * R.HostBodyShare;
      }
      if (!Attr.Workers.empty())
        R.HostDominantStall = obs::hostSpanName(Attr.dominantStall());
    }
  }
  R.HostSeconds = elapsedSince(Start);
  return R;
}

/// Attribution shares of total attributed (overhead) ticks, the
/// deterministic quantities the gate diffs.
void writeAttribution(JsonWriter &W, const prof::ProfileCollector &P) {
  os::Ticks Total = P.totalAttributed();
  W.beginObject();
  for (unsigned I = 0; I < prof::NumCauses; ++I) {
    prof::Cause C = static_cast<prof::Cause>(I);
    double Share = Total ? static_cast<double>(P.totalCause(C)) /
                               static_cast<double>(Total)
                         : 0.0;
    W.field(prof::causeName(C), Share);
  }
  W.endObject();
}

/// Embeds the workload's spmetrics-v1 registry document.
void writeMetrics(JsonWriter &W, const StatisticRegistry &Stats) {
  std::string Doc;
  {
    RawStringOstream OS(Doc);
    obs::writeRegistryJson(Stats, OS);
  }
  std::string Err;
  std::optional<JsonValue> V = parseJson(Doc, &Err);
  if (!V) {
    W.value("metrics-parse-error: " + Err);
    return;
  }
  writeJsonValue(W, *V);
}

} // namespace

int main(int Argc, char **Argv) {
  OptionRegistry Registry;
  Opt<std::string> Benches(Registry, "benches", "",
                           "comma-separated external bench binaries to run");
  Opt<std::string> Workloads(Registry, "workloads", "gzip,gcc,mcf",
                             "workloads for the in-process telemetry pass");
  Opt<double> Scale(Registry, "scale", 0.1, "workload duration scale");
  Opt<bool> Smoke(Registry, "smoke", false,
                  "CI smoke preset: fig5_icount2 + tab_overheads on "
                  "gzip,gcc,mcf at scale 0.1");
  Opt<std::string> BinDir(Registry, "bindir", ".",
                          "directory holding the bench binaries");
  Opt<std::string> OutPath(Registry, "out", "",
                           "output path (default BENCH_<date>.json)");
  Opt<std::string> BaselinePath(Registry, "baseline", "",
                                "committed BENCH_*.json to gate against");
  Opt<double> MaxReg(Registry, "maxreg", 0.10,
                     "max relative regression before the gate fails");
  Opt<bool> HostGate(Registry, "hostgate", true,
                     "gate -spmp wall time against serial (strict win "
                     "required on multi-core hosts, bounded overhead on "
                     "single-core ones); exit 2 on failure");
  Opt<uint64_t> HostWorkersOpt(Registry, "hostworkers", 4,
                               "-spmp worker count for the wall-time "
                               "comparison (0 skips it)");
  Opt<uint64_t> HostSamples(Registry, "hostsamples", 3,
                            "wall-time samples per side (min is kept)");
  Opt<double> MaxHostOver(Registry, "maxhostover", 2.0,
                          "single-core hosts: max tolerated -spmp/serial "
                          "wall ratio");
  Opt<std::string> GitSha(Registry, "gitsha", "",
                          "git revision to record (default: git rev-parse)");
  Opt<std::string> Date(Registry, "date", "",
                        "date to record/name the output (default: today)");
  Opt<bool> Help(Registry, "help", false, "print options");

  std::string Err;
  if (!Registry.parse(Argc, Argv, Err)) {
    errs() << "error: " << Err << "\n";
    return 1;
  }
  if (Help) {
    Registry.printHelp(outs());
    return 0;
  }

  std::string BenchList = Benches;
  std::string WorkloadList = Workloads;
  double RunScale = Scale;
  if (Smoke) {
    BenchList = "fig5_icount2,tab_overheads";
    WorkloadList = "gzip,gcc,mcf";
    RunScale = 0.1;
  }

  std::string RunDate = Date.value().empty() ? currentDate() : Date.value();
  std::string Out = OutPath.value().empty() ? "BENCH_" + RunDate + ".json"
                                            : OutPath.value();
  std::string Sha = GitSha.value().empty() ? gitSha() : GitSha.value();

  // Validate every workload up front; findWorkload() aborts on unknown
  // names, so resolve via the suite and fail with a usable message.
  std::vector<const workloads::WorkloadInfo *> Infos;
  for (const std::string &Name : splitCommaList(WorkloadList)) {
    const workloads::WorkloadInfo *Info = lookupWorkload(Name);
    if (!Info) {
      errs() << "error: unknown workload '" << Name << "'\n";
      return 1;
    }
    Infos.push_back(Info);
  }

  os::CostModel Model;

  // Deterministic in-process telemetry. The wall-time comparison clamps
  // the worker count to the host's core count: gating -spmp 4 on a
  // 1-core machine would measure nothing but oversubscription thrash.
  unsigned Workers = static_cast<unsigned>(uint64_t(HostWorkersOpt));
  unsigned Cores = std::max(1u, std::thread::hardware_concurrency());
  if (Workers > Cores)
    Workers = Cores;
  unsigned Samples = std::max<unsigned>(
      1, static_cast<unsigned>(uint64_t(HostSamples)));
  std::vector<WorkloadRun> Runs;
  for (const workloads::WorkloadInfo *Info : Infos) {
    outs() << "telemetry: " << Info->Name << " (scale "
           << formatFixed(RunScale, 2) << ")\n";
    outs().flush();
    Runs.push_back(runWorkload(*Info, RunScale, Model, Workers, Samples));
  }

  // External bench binaries: one row per workload through -only so the
  // smoke subset stays bounded; micro_* run once under google-benchmark's
  // JSON reporter.
  std::vector<BenchRun> BenchRuns;
  for (const std::string &Name : splitCommaList(BenchList)) {
    BenchRun B;
    B.Name = Name;
    std::string Bin = BinDir.value() + "/" + Name;
    if (Name.rfind("micro_", 0) == 0) {
      B.Command =
          Bin + " --benchmark_format=json --benchmark_min_time=0.05";
    } else {
      // The figure binaries take one -only name; run per workload and
      // merge the single-row arrays below.
      B.Command = Bin + " -json 1 -scale " + formatFixed(RunScale, 3);
    }
    outs() << "bench: " << B.Name << "\n";
    outs().flush();
    auto Start = std::chrono::steady_clock::now();
    if (Name.rfind("micro_", 0) == 0) {
      std::string Text = runCommand(B.Command, B.ExitCode);
      std::string Payload = extractJsonPayload(Text);
      if (std::optional<JsonValue> V = parseJson(Payload, &B.ParseError))
        B.Output = std::move(*V);
    } else {
      // Merge per-workload single-row arrays into one array document.
      std::string Merged = "[";
      bool First = true;
      for (const workloads::WorkloadInfo *Info : Infos) {
        std::string Cmd = B.Command + " -only " + Info->Name;
        int Exit = 0;
        std::string Text = runCommand(Cmd, Exit);
        if (Exit != 0)
          B.ExitCode = Exit;
        std::string Payload = extractJsonPayload(Text);
        // Strip the brackets to splice rows together.
        if (Payload.size() >= 2 && Payload.front() == '[' &&
            Payload.back() == ']') {
          std::string Rows = Payload.substr(1, Payload.size() - 2);
          if (!Rows.empty()) {
            if (!First)
              Merged += ",";
            Merged += Rows;
            First = false;
          }
        }
      }
      Merged += "]";
      B.Command += " -only <workload>";
      if (std::optional<JsonValue> V = parseJson(Merged, &B.ParseError))
        B.Output = std::move(*V);
    }
    B.HostSeconds = elapsedSince(Start);
    BenchRuns.push_back(std::move(B));
  }

  // Emit the spbench-v1 document.
  std::string Doc;
  {
    RawStringOstream OS(Doc);
    JsonWriter W(OS);
    W.beginObject();
    W.field("schema", prof::BenchSchema);
    W.field("git_sha", Sha);
    W.field("date", RunDate);
    W.field("scale", RunScale);
    W.key("flags").beginObject();
    W.field("benches", BenchList);
    W.field("workloads", WorkloadList);
    W.field("maxreg", double(MaxReg));
    W.endObject();
    W.key("workloads").beginArray();
    for (const WorkloadRun &R : Runs) {
      W.beginObject();
      W.field("name", R.Name);
      W.field("native_ticks", static_cast<uint64_t>(R.NativeTicks));
      W.field("pin_ticks", static_cast<uint64_t>(R.PinTicks));
      W.field("sp_ticks", static_cast<uint64_t>(R.SpTicks));
      W.field("slowdown_pin", R.SlowdownPin);
      W.field("slowdown_sp", R.SlowdownSp);
      W.field("host_seconds", R.HostSeconds);
      if (R.HostWorkers) {
        // Wall-clock context for the host-parallel gate; machine-dependent
        // by nature, so the baseline diff never keys on these.
        W.field("host_workers", static_cast<uint64_t>(R.HostWorkers));
        W.field("sp_wall_serial_seconds", R.SerialSpSeconds);
        W.field("sp_wall_spmp_seconds", R.ParallelSpSeconds);
        W.field("host_ticks_match", R.HostTicksMatch);
        W.field("host_utilization_pct", R.HostUtilizationPct);
        W.field("host_body_share", R.HostBodyShare);
        W.field("host_dominant_stall", R.HostDominantStall);
      }
      // spin_doctor summary: where the critical path says the time went
      // and whether its scaling prediction held up against the doubled-
      // parallelism re-run. critical_coverage must stay ~1.0 (the path
      // partitions [0, wall] exactly); predicted-vs-actual quantifies the
      // Amdahl model's honesty per workload.
      if (R.Doctor.Valid) {
        W.key("doctor").beginObject();
        W.field("critical_ticks",
                static_cast<uint64_t>(R.Doctor.CriticalTicks));
        W.field("critical_coverage",
                R.Doctor.WallTicks
                    ? static_cast<double>(R.Doctor.CriticalTicks) /
                          static_cast<double>(R.Doctor.WallTicks)
                    : 0.0);
        W.field("serial_fraction", R.Doctor.SerialFraction);
        if (!R.Doctor.Bottlenecks.empty())
          W.field("top_bottleneck", R.Doctor.Bottlenecks.front().Kind);
        W.field("predicted_wall_2x_ticks",
                static_cast<uint64_t>(R.Doctor.PredictedWall2x));
        W.field("predicted_speedup_2x", R.Doctor.PredictedSpeedup2x);
        W.field("actual_wall_2x_ticks",
                static_cast<uint64_t>(R.ActualWall2x));
        W.field("actual_speedup_2x", R.ActualSpeedup2x);
        W.key("recommended_flags").beginArray();
        for (const std::string &F : R.Doctor.RecommendedFlags)
          W.value(F);
        W.endArray();
        W.endObject();
      }
      W.key("attribution");
      writeAttribution(W, R.Profile);
      W.key("metrics");
      writeMetrics(W, R.Metrics);
      W.endObject();
    }
    W.endArray();
    W.key("benches").beginArray();
    for (const BenchRun &B : BenchRuns) {
      W.beginObject();
      W.field("name", B.Name);
      W.field("command", B.Command);
      W.field("exit_code", static_cast<int64_t>(B.ExitCode));
      W.field("host_seconds", B.HostSeconds);
      if (B.Output) {
        W.key("output");
        writeJsonValue(W, *B.Output);
      } else {
        W.field("parse_error", B.ParseError);
      }
      W.endObject();
    }
    W.endArray();
    W.endObject();
    OS << '\n';
  }
  writeFile(Out, Doc);
  outs() << "wrote " << Out << "\n";

  // Folded-stack attribution profile across all telemetry workloads, with
  // a per-workload root frame.
  {
    std::string Folded;
    for (const WorkloadRun &R : Runs) {
      std::string One;
      {
        RawStringOstream OS(One);
        R.Profile.writeFolded(OS);
      }
      size_t Pos = 0;
      while (Pos < One.size()) {
        size_t Eol = One.find('\n', Pos);
        if (Eol == std::string::npos)
          Eol = One.size();
        Folded += R.Name + ";" + One.substr(Pos, Eol - Pos) + "\n";
        Pos = Eol + 1;
      }
    }
    writeFile(Out + ".folded", Folded);
    outs() << "wrote " << Out << ".folded\n";
  }

  // Regression gate.
  if (!BaselinePath.value().empty()) {
    std::optional<std::string> BaseText = readFile(BaselinePath);
    if (!BaseText) {
      errs() << "error: cannot read baseline '" << BaselinePath.value()
             << "'\n";
      return 2;
    }
    std::string BaseErr, CurErr;
    std::optional<JsonValue> Base = parseJson(*BaseText, &BaseErr);
    std::optional<JsonValue> Cur = parseJson(Doc, &CurErr);
    if (!Base || !Cur) {
      errs() << "error: gate parse failure: "
             << (!Base ? BaseErr : CurErr) << "\n";
      return 2;
    }
    prof::BenchGateConfig Cfg;
    Cfg.MaxRelative = MaxReg;
    prof::BenchCompareResult Result =
        prof::compareBenchReports(*Base, *Cur, Cfg);
    prof::printCompareResult(Result, outs());
    outs().flush();
    if (!Result.ok())
      return 2;
  }

  // Host-parallel wall-time gate: measured on this machine, against this
  // run's own serial timing (never against the committed baseline). On a
  // multi-core host -spmp must win outright; a single-core host has
  // nothing to parallelize onto, so only bounded overhead is required.
  // Virtual-tick parity between serial and -spmp is gated unconditionally.
  if (HostGate && Workers) {
    bool MultiCore = std::thread::hardware_concurrency() > 1;
    bool Failed = false;
    double SerialSum = 0, ParallelSum = 0;
    for (const WorkloadRun &R : Runs) {
      double Ratio = R.SerialSpSeconds > 0
                         ? R.ParallelSpSeconds / R.SerialSpSeconds
                         : 1.0;
      SerialSum += R.SerialSpSeconds;
      ParallelSum += R.ParallelSpSeconds;
      const char *Verdict = "ok";
      if (!R.HostTicksMatch) {
        Verdict = "FAIL (virtual ticks diverged between serial and -spmp)";
        Failed = true;
      }
      outs() << "hostgate: " << R.Name << " serial "
             << formatFixed(R.SerialSpSeconds, 3) << "s vs -spmp "
             << R.HostWorkers << " " << formatFixed(R.ParallelSpSeconds, 3)
             << "s (ratio " << formatFixed(Ratio, 2) << "): " << Verdict
             << "\n";
    }
    // The wall-time verdict uses the aggregate across workloads: the
    // smoke workloads individually run for milliseconds, where per-run
    // jitter swamps any per-workload threshold.
    double Ratio = SerialSum > 0 ? ParallelSum / SerialSum : 1.0;
    const char *Verdict = "ok";
    if (MultiCore && Ratio >= 1.0) {
      Verdict = "FAIL (-spmp did not beat serial on a multi-core host)";
      Failed = true;
    } else if (!MultiCore && Ratio > MaxHostOver) {
      Verdict = "FAIL (single-core overhead bound exceeded)";
      Failed = true;
    }
    outs() << "hostgate: aggregate serial " << formatFixed(SerialSum, 3)
           << "s vs -spmp " << Workers << " " << formatFixed(ParallelSum, 3)
           << "s (ratio " << formatFixed(Ratio, 2) << ", "
           << (MultiCore ? "multi-core" : "single-core") << "): " << Verdict
           << "\n";
    outs().flush();
    if (Failed)
      return 2;
  }
  outs().flush();
  return 0;
}
