//===- bench/micro_hostfault.cpp - Containment overhead check -------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Asserts that the host fault-containment machinery — the cancellation
// token checked at every budget gate the worker records, and the timed
// (rather than untimed) stream waits on the sim thread — costs less than
// 5% wall time on a fault-free -spmp run. Compares the default watchdog
// configuration against SpOptions::HostWatchdogOff, which strips both:
// the recording ledger gets no token and the replayer waits without a
// deadline. Takes the minimum of N samples of each (minimum, not mean:
// scheduling noise only ever adds time) and fails loudly when the
// watchdog-on minimum exceeds the watchdog-off minimum by the budget.
//
// A standalone pass/fail binary rather than a google-benchmark harness so
// CI can run it directly and gate on the exit code:
//
//   micro_hostfault              # PASS/FAIL, exit 0/1
//   micro_hostfault -samples 7 -budget 5.0
//
//===----------------------------------------------------------------------===//

#include "superpin/Engine.h"
#include "support/CommandLine.h"
#include "support/RawOstream.h"
#include "support/StringExtras.h"
#include "tools/Icount.h"
#include "workloads/Generator.h"

#include <algorithm>
#include <chrono>

using namespace spin;
using namespace spin::tools;

/// Wall-clock seconds consumed by \p Fn.
template <typename Fn> static double measureSeconds(Fn &&F) {
  auto T0 = std::chrono::steady_clock::now();
  F();
  std::chrono::duration<double> D = std::chrono::steady_clock::now() - T0;
  return D.count();
}

int main(int Argc, char **Argv) {
  OptionRegistry Registry;
  Opt<uint64_t> Samples(Registry, "samples", 9,
                        "timed samples per configuration (min-of-N)");
  Opt<std::string> Budget(Registry, "budget", "5.0",
                          "maximum containment overhead in percent");
  Opt<uint64_t> Workers(Registry, "workers", 4, "-spmp worker count");
  Opt<bool> Help(Registry, "help", false, "print options");
  std::string Err;
  if (!Registry.parse(Argc, Argv, Err)) {
    errs() << "error: " << Err << "\n";
    return 1;
  }
  if (Help) {
    Registry.printHelp(outs());
    return 0;
  }
  double BudgetPct = std::strtod(Budget.value().c_str(), nullptr);

  // A body-heavy workload with many short slices: the cancellation check
  // fires at every budget gate the bodies record, so per-gate cost is
  // what dominates any containment overhead. Big enough that each run is
  // several hundred ms — a scheduling-noise spike must not read as
  // containment overhead.
  workloads::GenParams P;
  P.Name = "micro-hostfault";
  P.TargetInsts = 1u << 23;
  P.NumFuncs = 8;
  P.BlocksPerFunc = 8;
  P.WorkingSetBytes = 1 << 16;
  vm::Program Prog = workloads::generateWorkload(P);
  os::CostModel Model;

  auto OneRun = [&](bool WithWatchdog) {
    sp::SpOptions Opts;
    Opts.SliceMs = 20; // many short slices: maximum dispatch pressure
    Opts.HostWorkers = static_cast<uint32_t>(uint64_t(Workers));
    Opts.HostWatchdogMs =
        WithWatchdog ? 0 : sp::SpOptions::HostWatchdogOff;
    return measureSeconds([&] {
      sp::runSuperPin(Prog, makeIcountTool(IcountGranularity::Instruction),
                      Opts, Model);
    });
  };

  // Alternate off/on samples so machine-load drift lands on both sides
  // equally; min-of-N absorbs the first (cold) pair and any noise spikes
  // (scheduling noise only ever adds time).
  double Off = 1e30, On = 1e30;
  for (uint64_t I = 0; I != uint64_t(Samples); ++I) {
    Off = std::min(Off, OneRun(false));
    On = std::min(On, OneRun(true));
  }
  double OverheadPct = Off > 0 ? (On - Off) / Off * 100.0 : 0.0;

  outs() << "containment overhead: watchdog-off " << formatFixed(Off, 4)
         << "s, watchdog-on " << formatFixed(On, 4) << "s -> "
         << formatFixed(OverheadPct, 2) << "% (budget "
         << formatFixed(BudgetPct, 1) << "%, min of "
         << uint64_t(Samples) << " samples, -spmp "
         << uint64_t(Workers) << ")\n";
  bool Pass = OverheadPct < BudgetPct;
  outs() << (Pass ? "PASS" : "FAIL") << ": containment overhead "
         << (Pass ? "within" : "exceeds") << " budget\n";
  outs().flush();
  return Pass ? 0 : 1;
}
