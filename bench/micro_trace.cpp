//===- bench/micro_trace.cpp - Observability microbenchmarks --------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Host-performance microbenchmarks of the tracing subsystem: raw recorder
// appends, histogram recording, Chrome trace serialization, and — the
// acceptance bar — a full engine run with tracing off vs. on (compare the
// two BM_EngineRun timings; the delta is the tracing overhead and should
// stay in the low single digits).
//
//===----------------------------------------------------------------------===//

#include "obs/TraceRecorder.h"
#include "superpin/Engine.h"
#include "support/Histogram.h"
#include "support/RawOstream.h"
#include "tools/Icount.h"
#include "workloads/Generator.h"

#include "benchmark/benchmark.h"

using namespace spin;
using namespace spin::obs;
using namespace spin::sp;
using namespace spin::vm;

static Program &traceProgram() {
  static Program Prog = [] {
    workloads::GenParams P;
    P.Name = "micro-trace";
    P.TargetInsts = 1u << 20;
    P.NumFuncs = 8;
    P.BlocksPerFunc = 8;
    P.WorkingSetBytes = 1 << 16;
    P.SyscallMask = 63;
    P.Mix = workloads::SysMix::Mixed;
    return workloads::generateWorkload(P);
  }();
  return Prog;
}

static void BM_RecorderInstant(benchmark::State &State) {
  TraceRecorder Rec(1 << 16);
  uint64_t Ts = 0;
  for (auto _ : State) {
    Rec.instant(1, EventKind::SysService, ++Ts, 42);
    benchmark::DoNotOptimize(Rec.size());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RecorderInstant);

static void BM_RecorderSpanPair(benchmark::State &State) {
  TraceRecorder Rec(1 << 16);
  uint64_t Ts = 0;
  for (auto _ : State) {
    Rec.begin(1, EventKind::SliceRun, ++Ts);
    Rec.end(1, EventKind::SliceRun, ++Ts, 100);
  }
  State.SetItemsProcessed(State.iterations() * 2);
}
BENCHMARK(BM_RecorderSpanPair);

static void BM_HistogramRecord(benchmark::State &State) {
  Histogram H;
  uint64_t V = 0;
  for (auto _ : State) {
    H.record(V += 977);
    benchmark::DoNotOptimize(H.count());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_HistogramRecord);

static void BM_ChromeExport(benchmark::State &State) {
  TraceRecorder Rec(1 << 14);
  for (uint64_t I = 0; I != (1u << 14); ++I) {
    if (I % 2)
      Rec.begin(I % 8, EventKind::SliceRun, I * 10);
    else
      Rec.end(I % 8, EventKind::SliceRun, I * 10);
  }
  os::CostModel Model;
  for (auto _ : State) {
    std::string Out;
    RawStringOstream OS(Out);
    Rec.writeChromeTrace(OS, Model.TicksPerMs);
    OS.flush();
    benchmark::DoNotOptimize(Out.size());
    State.SetBytesProcessed(State.bytes_processed() +
                            static_cast<int64_t>(Out.size()));
  }
}
BENCHMARK(BM_ChromeExport);

/// The acceptance benchmark: one full engine run, Arg(0) = tracing off,
/// Arg(1) = tracing on. The relative wall-time delta is the end-to-end
/// tracing overhead.
static void BM_EngineRun(benchmark::State &State) {
  Program &Prog = traceProgram();
  os::CostModel Model;
  bool Traced = State.range(0) != 0;
  for (auto _ : State) {
    TraceRecorder Rec(1 << 18);
    SpOptions Opts;
    Opts.SliceMs = 50;
    if (Traced)
      Opts.Trace = &Rec;
    SpRunReport Rep = runSuperPin(
        Prog, tools::makeIcountTool(tools::IcountGranularity::BasicBlock),
        Opts, Model);
    benchmark::DoNotOptimize(Rep.WallTicks);
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(Rep.MasterInsts));
  }
}
BENCHMARK(BM_EngineRun)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
