//===- bench/fig5_icount2.cpp - Figure 5 reproduction ---------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Figure 5: icount2 (basic-block counting) — Pin and SuperPin relative to
// native. Paper result: SuperPin averages ~125% of native (25% slowdown,
// range 7% to just under 100%), because basic-block instrumentation
// leaves enough parallelism for the application to run near real time.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;
using namespace spin::workloads;

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Flags.parse(Argc, Argv);
  os::CostModel Model;

  outs() << "Figure 5: icount2 runtime relative to native "
            "(100% = native)\n\n";
  Table T;
  T.addColumn("Benchmark", Table::Align::Left);
  T.addColumn("Pin");
  T.addColumn("SuperPin");
  T.addColumn("CountOK", Table::Align::Left);

  double PinSum = 0, SpSum = 0;
  unsigned Count = 0;
  for (const WorkloadInfo &Info : spec2000Suite()) {
    if (!Flags.selected(Info.Name))
      continue;
    vm::Program Prog = buildWorkload(Info, Flags.Scale);
    TripleRun R =
        runTriple(Prog, Info, IcountGranularity::BasicBlock, Flags, Model);
    double PinRel = double(R.PinTicks) / double(R.NativeTicks);
    double SpRel = double(R.Sp.WallTicks) / double(R.NativeTicks);
    T.startRow();
    T.cell(Info.Name);
    T.cellPercent(PinRel, 0);
    T.cellPercent(SpRel, 0);
    T.cell(R.IcountNative == R.IcountSp && R.Sp.PartitionOk ? "yes" : "NO");
    PinSum += PinRel;
    SpSum += SpRel;
    ++Count;
  }
  if (Count > 1) {
    T.startRow();
    T.cell("AVG");
    T.cellPercent(PinSum / Count, 0);
    T.cellPercent(SpSum / Count, 0);
    T.cell("");
  }
  emit(T, Flags);
  outs() << "\nPaper reference: SuperPin AVG ~125% (25% slowdown), "
            "range 107%-<200%.\n";
  return 0;
}
