//===- bench/micro_hostobs.cpp - Host-recorder overhead check -------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Asserts that attaching the host wall-clock recorder (-sphosttrace /
// -sphoststats) costs less than 5% wall time on an -spmp-saturating
// workload. Runs the same engine configuration with the recorder detached
// and attached, takes the minimum of N samples of each (minimum, not
// mean: scheduling noise only ever adds time), and fails loudly when the
// attached minimum exceeds the detached minimum by the budget.
//
// A standalone pass/fail binary rather than a google-benchmark harness so
// CI can run it directly and gate on the exit code:
//
//   micro_hostobs              # PASS/FAIL, exit 0/1
//   micro_hostobs -samples 7 -budget 5.0
//
//===----------------------------------------------------------------------===//

#include "obs/HostTraceRecorder.h"
#include "superpin/Engine.h"
#include "support/CommandLine.h"
#include "support/RawOstream.h"
#include "support/StringExtras.h"
#include "tools/Icount.h"
#include "workloads/Generator.h"

#include <algorithm>
#include <chrono>

using namespace spin;
using namespace spin::tools;

/// Wall-clock seconds consumed by \p Fn.
template <typename Fn> static double measureSeconds(Fn &&F) {
  auto T0 = std::chrono::steady_clock::now();
  F();
  std::chrono::duration<double> D = std::chrono::steady_clock::now() - T0;
  return D.count();
}

int main(int Argc, char **Argv) {
  OptionRegistry Registry;
  Opt<uint64_t> Samples(Registry, "samples", 9,
                        "timed samples per configuration (min-of-N)");
  Opt<std::string> Budget(Registry, "budget", "5.0",
                          "maximum recorder overhead in percent");
  Opt<uint64_t> Workers(Registry, "workers", 4, "-spmp worker count");
  Opt<bool> Help(Registry, "help", false, "print options");
  std::string Err;
  if (!Registry.parse(Argc, Argv, Err)) {
    errs() << "error: " << Err << "\n";
    return 1;
  }
  if (Help) {
    Registry.printHelp(outs());
    return 0;
  }
  double BudgetPct = std::strtod(Budget.value().c_str(), nullptr);

  // A body-heavy workload: enough slices to keep every worker busy, so
  // the recorder's span writes sit on the hot dispatch/retire path. Big
  // enough that each run is several hundred ms — a scheduling-noise
  // spike must not read as recorder overhead.
  workloads::GenParams P;
  P.Name = "micro-hostobs";
  P.TargetInsts = 1u << 23;
  P.NumFuncs = 8;
  P.BlocksPerFunc = 8;
  P.WorkingSetBytes = 1 << 16;
  vm::Program Prog = workloads::generateWorkload(P);
  os::CostModel Model;

  auto OneRun = [&](bool WithRecorder) {
    sp::SpOptions Opts;
    Opts.SliceMs = 20; // many short slices: maximum dispatch pressure
    Opts.HostWorkers = static_cast<uint32_t>(uint64_t(Workers));
    obs::HostTraceRecorder Rec;
    if (WithRecorder)
      Opts.HostTrace = &Rec;
    return measureSeconds([&] {
      sp::runSuperPin(Prog, makeIcountTool(IcountGranularity::Instruction),
                      Opts, Model);
    });
  };

  // Alternate off/on samples so machine-load drift lands on both sides
  // equally; min-of-N absorbs the first (cold) pair and any noise spikes
  // (scheduling noise only ever adds time).
  double Off = 1e30, On = 1e30;
  for (uint64_t I = 0; I != uint64_t(Samples); ++I) {
    Off = std::min(Off, OneRun(false));
    On = std::min(On, OneRun(true));
  }
  double OverheadPct = Off > 0 ? (On - Off) / Off * 100.0 : 0.0;

  outs() << "host recorder overhead: recorder-off " << formatFixed(Off, 4)
         << "s, recorder-on " << formatFixed(On, 4) << "s -> "
         << formatFixed(OverheadPct, 2) << "% (budget "
         << formatFixed(BudgetPct, 1) << "%, min of "
         << uint64_t(Samples) << " samples, -spmp "
         << uint64_t(Workers) << ")\n";
  bool Pass = OverheadPct < BudgetPct;
  outs() << (Pass ? "PASS" : "FAIL") << ": recorder overhead "
         << (Pass ? "within" : "exceeds") << " budget\n";
  outs().flush();
  return Pass ? 0 : 1;
}
