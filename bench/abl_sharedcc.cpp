//===- bench/abl_sharedcc.cpp - Shared code cache (future work §8) --------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 8 proposes sharing the code cache across timeslices to attack
// the compilation slowdown (each slice otherwise starts cold), at the
// price of per-entry consistency checks. This implements and measures
// that proposal: JIT work is shared, per-slice tool data stays private.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;
using namespace spin::workloads;

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Flags.parse(Argc, Argv);
  os::CostModel Model;

  outs() << "Future work (Section 8): shared code cache across slices\n\n";
  Table T;
  T.addColumn("Benchmark", Table::Align::Left);
  T.addColumn("Tool", Table::Align::Left);
  T.addColumn("SharedCC", Table::Align::Left);
  T.addColumn("Runtime(s)");
  T.addColumn("Compile(s)");
  T.addColumn("vs native");

  for (const char *Name : {"gcc", "vortex", "perlbmk", "crafty"}) {
    if (!Flags.selected(Name))
      continue;
    const WorkloadInfo &Info = findWorkload(Name);
    vm::Program Prog = buildWorkload(Info, Flags.Scale);
    os::Ticks Native =
        pin::runNative(Prog, Model, instCost(Model, Info)).WallTicks;
    for (IcountGranularity G :
         {IcountGranularity::Instruction, IcountGranularity::BasicBlock}) {
      for (bool Shared : {false, true}) {
        sp::SpOptions Opts = Flags.spOptions(Info);
        Opts.SharedCodeCache = Shared;
        sp::SpRunReport Rep =
            sp::runSuperPin(Prog, makeIcountTool(G), Opts, Model);
        T.startRow();
        T.cell(Name);
        T.cell(G == IcountGranularity::Instruction ? "icount1" : "icount2");
        T.cell(Shared ? "yes" : "no");
        T.cell(Model.ticksToSeconds(Rep.WallTicks), 2);
        T.cell(Model.ticksToSeconds(Rep.CompileTicks), 2);
        T.cellPercent(double(Rep.WallTicks) / double(Native), 0);
      }
    }
  }
  emit(T, Flags);
  outs() << "\nExpectation: sharing slashes total compile time, helping "
            "most where footprints are large (gcc) and slices short.\n";
  return 0;
}
