//===- bench/fig6_timeslice.cpp - Figure 6 reproduction -------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Figure 6: gcc runtime vs. timeslice interval, decomposed into the
// paper's stacked components: native execution, fork & other losses,
// master sleep (stalls at -spslices), and the post-exit pipeline drain.
// Paper result: fork/sleep overheads shrink as slices grow while the
// pipeline delay grows; the net runtime falls and levels off.
//
// The sweep 50/100/200/400 virtual ms is the scaled equivalent of the
// paper's 0.5-4 s (see BenchCommon.h's scaling note).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;
using namespace spin::workloads;

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Flags.parse(Argc, Argv);
  os::CostModel Model;
  const WorkloadInfo &Info = findWorkload(
      Flags.Only.value().empty() ? "gcc" : Flags.Only.value());
  vm::Program Prog = buildWorkload(Info, Flags.Scale);
  os::Ticks Native =
      pin::runNative(Prog, Model, instCost(Model, Info)).WallTicks;

  outs() << "Figure 6: timeslice interval variation for " << Info.Name
         << " (icount2), virtual seconds\n\n";
  Table T;
  T.addColumn("Timeslice", Table::Align::Left);
  T.addColumn("native");
  T.addColumn("fork&others");
  T.addColumn("sleep");
  T.addColumn("pipeline");
  T.addColumn("total");
  T.addColumn("vs native");

  for (uint64_t Ms : {50, 100, 200, 400}) {
    sp::SpOptions Opts = Flags.spOptions(Info);
    Opts.SliceMs = Ms;
    sp::SpRunReport Rep = sp::runSuperPin(
        Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);
    T.startRow();
    T.cell(formatFixed(double(Ms) / 1000.0, 2) + "s");
    T.cell(Model.ticksToSeconds(Rep.NativeTicks), 2);
    T.cell(Model.ticksToSeconds(Rep.ForkOthersTicks), 2);
    T.cell(Model.ticksToSeconds(Rep.SleepTicks), 2);
    T.cell(Model.ticksToSeconds(Rep.PipelineTicks), 2);
    T.cell(Model.ticksToSeconds(Rep.WallTicks), 2);
    T.cellPercent(double(Rep.WallTicks) / double(Native), 0);
  }
  emit(T, Flags);
  outs() << "\nNative run: " << formatFixed(Model.ticksToSeconds(Native), 2)
         << "s. Paper reference (gcc, 0.5-4s slices): fork&others and "
            "sleep shrink with larger slices,\npipeline grows, total "
            "falls then levels off.\n";
  return 0;
}
