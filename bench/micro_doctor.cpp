//===- bench/micro_doctor.cpp - Tracing + diagnosis overhead check --------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Asserts that the critical-path diagnosis layer costs less than 5% wall
// time on an -spmp run: the "on" side attaches a TraceRecorder (stitched
// per-slice staging on the parallel path) and runs the spin_doctor
// analysis over the finished report; the "off" side runs the same engine
// configuration bare. Min-of-N with alternating samples, like the other
// micro_* gates (minimum, not mean: scheduling noise only ever adds
// time).
//
// A standalone pass/fail binary so CI can gate on the exit code:
//
//   micro_doctor               # PASS/FAIL, exit 0/1
//   micro_doctor -samples 7 -budget 5.0
//
//===----------------------------------------------------------------------===//

#include "obs/Doctor.h"
#include "obs/TraceRecorder.h"
#include "superpin/Engine.h"
#include "superpin/Reporting.h"
#include "support/CommandLine.h"
#include "support/RawOstream.h"
#include "support/StringExtras.h"
#include "tools/Icount.h"
#include "workloads/Generator.h"

#include <algorithm>
#include <chrono>

using namespace spin;
using namespace spin::tools;

/// Wall-clock seconds consumed by \p Fn.
template <typename Fn> static double measureSeconds(Fn &&F) {
  auto T0 = std::chrono::steady_clock::now();
  F();
  std::chrono::duration<double> D = std::chrono::steady_clock::now() - T0;
  return D.count();
}

int main(int Argc, char **Argv) {
  OptionRegistry Registry;
  Opt<uint64_t> Samples(Registry, "samples", 9,
                        "timed samples per configuration (min-of-N)");
  Opt<std::string> Budget(Registry, "budget", "5.0",
                          "maximum tracing+diagnosis overhead in percent");
  Opt<uint64_t> Workers(Registry, "workers", 4, "-spmp worker count");
  Opt<bool> Help(Registry, "help", false, "print options");
  std::string Err;
  if (!Registry.parse(Argc, Argv, Err)) {
    errs() << "error: " << Err << "\n";
    return 1;
  }
  if (Help) {
    Registry.printHelp(outs());
    return 0;
  }
  double BudgetPct = std::strtod(Budget.value().c_str(), nullptr);

  // A body-heavy workload with many short slices: every trace event on the
  // parallel path rides the per-slice staging buffers and the merge-order
  // stitch, so this configuration maximizes the machinery under test.
  workloads::GenParams P;
  P.Name = "micro-doctor";
  P.TargetInsts = 1u << 23;
  P.NumFuncs = 8;
  P.BlocksPerFunc = 8;
  P.WorkingSetBytes = 1 << 16;
  vm::Program Prog = workloads::generateWorkload(P);
  os::CostModel Model;

  auto OneRun = [&](bool WithDiagnosis) {
    sp::SpOptions Opts;
    Opts.SliceMs = 20; // many short slices: maximum staging pressure
    Opts.HostWorkers = static_cast<uint32_t>(uint64_t(Workers));
    obs::TraceRecorder Rec;
    if (WithDiagnosis)
      Opts.Trace = &Rec;
    return measureSeconds([&] {
      sp::SpRunReport Rep = sp::runSuperPin(
          Prog, makeIcountTool(IcountGranularity::Instruction), Opts, Model);
      if (WithDiagnosis) {
        obs::DoctorReport Diag = obs::diagnose(sp::doctorInput(Rep, Opts));
        // Consume the diagnosis so the analysis cannot be optimized away.
        if (!Diag.Valid)
          std::exit(1);
      }
    });
  };

  // Alternate off/on samples so machine-load drift lands on both sides
  // equally; min-of-N absorbs the first (cold) pair and any noise spikes.
  double Off = 1e30, On = 1e30;
  for (uint64_t I = 0; I != uint64_t(Samples); ++I) {
    Off = std::min(Off, OneRun(false));
    On = std::min(On, OneRun(true));
  }
  double OverheadPct = Off > 0 ? (On - Off) / Off * 100.0 : 0.0;

  outs() << "doctor overhead: bare " << formatFixed(Off, 4)
         << "s, traced+diagnosed " << formatFixed(On, 4) << "s -> "
         << formatFixed(OverheadPct, 2) << "% (budget "
         << formatFixed(BudgetPct, 1) << "%, min of " << uint64_t(Samples)
         << " samples, -spmp " << uint64_t(Workers) << ")\n";
  bool Pass = OverheadPct < BudgetPct;
  outs() << (Pass ? "PASS" : "FAIL") << ": stitched tracing + diagnosis "
         << (Pass ? "within" : "exceeds") << " budget\n";
  outs().flush();
  return Pass ? 0 : 1;
}
