//===- bench/micro_fault.cpp - Fault & recovery microbenchmarks -----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// google-benchmark measurements of the fault subsystem's host overhead:
// the per-slice plan draw, the playback hash-verify, the cost a merely
// *armed* plan adds to a clean run (checkpoint forks + record hashing),
// and full runs at increasing injection rates — i.e. what detection,
// retry, and quarantine actually cost end to end.
//
//===----------------------------------------------------------------------===//

#include "fault/FaultPlan.h"
#include "os/CostModel.h"
#include "os/Kernel.h"
#include "superpin/Engine.h"
#include "tools/Icount.h"
#include "workloads/Generator.h"

#include "benchmark/benchmark.h"

using namespace spin;
using namespace spin::fault;
using namespace spin::sp;

static vm::Program &faultProgram() {
  static vm::Program Prog = [] {
    workloads::GenParams P;
    P.Name = "microfault";
    P.TargetInsts = 300'000;
    P.NumFuncs = 6;
    P.BlocksPerFunc = 6;
    P.AluPerBlock = 3;
    P.WorkingSetBytes = 1 << 14;
    P.SyscallMask = 63;
    P.Mix = workloads::SysMix::Mixed;
    return workloads::generateWorkload(P);
  }();
  return Prog;
}

static SpOptions faultOptions() {
  SpOptions Opts;
  Opts.SliceMs = 50;
  Opts.PhysCpus = 8;
  Opts.VirtCpus = 8;
  return Opts;
}

static SpRunReport runOnce(const FaultPlan *Plan) {
  SpOptions Opts = faultOptions();
  Opts.Fault = Plan;
  os::CostModel Model;
  return runSuperPin(faultProgram(),
                     tools::makeIcountTool(tools::IcountGranularity::BasicBlock),
                     Opts, Model);
}

static void BM_FaultPlanForSlice(benchmark::State &State) {
  FaultPlan Plan(17, 0.5);
  uint32_t N = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(Plan.forSlice(++N & 1023));
}
BENCHMARK(BM_FaultPlanForSlice);

static void BM_HashSyscallEffects(benchmark::State &State) {
  os::SyscallEffects Eff;
  Eff.Number = 2;
  Eff.RetVal = 256;
  Eff.MemWrites.push_back({0x20000, std::vector<uint8_t>(256, 0xab)});
  for (auto _ : State)
    benchmark::DoNotOptimize(os::hashSyscallEffects(Eff));
}
BENCHMARK(BM_HashSyscallEffects);

/// Baseline: the engine with no plan at all.
static void BM_RunNoPlan(benchmark::State &State) {
  for (auto _ : State) {
    SpRunReport Rep = runOnce(nullptr);
    benchmark::DoNotOptimize(Rep.WallTicks);
  }
}
BENCHMARK(BM_RunNoPlan)->Unit(benchmark::kMillisecond);

/// An enabled plan that never fires: measures the standing cost of the
/// recovery machinery alone — per-slice checkpoint forks and record
/// hashing — with zero faults to recover from.
static void BM_RunArmedPlanNoFaults(benchmark::State &State) {
  FaultPlan Plan;
  FaultSpec S;
  S.Slice = ~0u; // a slice number the run never reaches
  Plan.add(S);
  for (auto _ : State) {
    SpRunReport Rep = runOnce(&Plan);
    benchmark::DoNotOptimize(Rep.WallTicks);
  }
}
BENCHMARK(BM_RunArmedPlanNoFaults)->Unit(benchmark::kMillisecond);

/// Full recovery cost at increasing injection rates (percent).
static void BM_RunWithFaults(benchmark::State &State) {
  FaultPlan Plan(17, double(State.range(0)) / 100.0);
  uint64_t Recovered = 0, Lost = 0;
  for (auto _ : State) {
    SpRunReport Rep = runOnce(&Plan);
    Recovered += Rep.RecoveredSlices;
    Lost += Rep.LostSlices;
    benchmark::DoNotOptimize(Rep.WallTicks);
  }
  State.counters["recovered"] =
      benchmark::Counter(static_cast<double>(Recovered),
                         benchmark::Counter::kAvgIterations);
  State.counters["lost"] = benchmark::Counter(
      static_cast<double>(Lost), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RunWithFaults)->Arg(20)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
