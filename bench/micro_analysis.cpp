//===- bench/micro_analysis.cpp - Static-analysis microbenchmarks ---------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks of the src/analysis pipeline (host
// performance): CFG construction, the individual lint passes, and the
// syscall-site map, each reported per guest instruction via
// SetItemsProcessed (items/s ≈ analyzed instructions per second, so
// 1 kilo-instruction costs 1e3 / rate seconds). A final pair of
// whole-run benchmarks contrasts a cold serial-Pin run against a
// statically seeded one, exposing the first-execution compile stalls
// ("compile_stalls") removed by analysis-guided trace seeding.
//
//===----------------------------------------------------------------------===//

#include "analysis/Passes.h"
#include "pin/Runner.h"
#include "tools/Icount.h"
#include "workloads/Generator.h"

#include "benchmark/benchmark.h"

using namespace spin;
using namespace spin::analysis;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::vm;

static Program &analysisProgram() {
  static Program Prog = [] {
    workloads::GenParams P;
    P.Name = "micro-analysis";
    P.TargetInsts = 1u << 20;
    P.NumFuncs = 24;
    P.BlocksPerFunc = 10;
    P.AluPerBlock = 4;
    P.WorkingSetBytes = 1 << 16;
    P.SyscallMask = 63;
    P.Mix = workloads::SysMix::Mixed;
    P.ChainEvery = 3;
    return workloads::generateWorkload(P);
  }();
  return Prog;
}

static void BM_CfgBuild(benchmark::State &State) {
  Program &Prog = analysisProgram();
  for (auto _ : State) {
    Cfg G = buildCfg(Prog);
    benchmark::DoNotOptimize(G.numBlocks());
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(Prog.Text.size()));
  }
}
BENCHMARK(BM_CfgBuild);

static void BM_UninitRegPass(benchmark::State &State) {
  Program &Prog = analysisProgram();
  Cfg G = buildCfg(Prog);
  for (auto _ : State) {
    benchmark::DoNotOptimize(findUninitRegReads(G).size());
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(Prog.Text.size()));
  }
}
BENCHMARK(BM_UninitRegPass);

static void BM_StackPass(benchmark::State &State) {
  Program &Prog = analysisProgram();
  Cfg G = buildCfg(Prog);
  for (auto _ : State) {
    benchmark::DoNotOptimize(findStackImbalance(G).size());
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(Prog.Text.size()));
  }
}
BENCHMARK(BM_StackPass);

static void BM_SyscallMapBuild(benchmark::State &State) {
  Program &Prog = analysisProgram();
  Cfg G = buildCfg(Prog);
  for (auto _ : State) {
    StaticSyscallMap Map = buildSyscallSiteMap(G);
    benchmark::DoNotOptimize(Map.numSites());
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(Prog.Text.size()));
  }
}
BENCHMARK(BM_SyscallMapBuild);

static void BM_FullLint(benchmark::State &State) {
  Program &Prog = analysisProgram();
  for (auto _ : State) {
    benchmark::DoNotOptimize(lintProgram(Prog).size());
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(Prog.Text.size()));
  }
}
BENCHMARK(BM_FullLint);

/// Serial-Pin run with a cold code cache (State.range(0) == 0) or one
/// statically seeded from the CFG (== 1). "compile_stalls" counts the
/// lazy first-execution trace compiles the run still hit; "seeded" the
/// traces precompiled up front.
static void BM_SerialPinColdVsSeeded(benchmark::State &State) {
  Program &Prog = analysisProgram();
  CostModel Model;
  bool Seed = State.range(0) != 0;
  Cfg G = buildCfg(Prog);
  uint64_t Stalls = 0, SeededTraces = 0;
  for (auto _ : State) {
    PinVmConfig Config;
    if (Seed)
      Config.SeedCfg = &G;
    RunReport R = runSerialPin(
        Prog, Model, 100,
        tools::makeIcountTool(tools::IcountGranularity::BasicBlock), Config);
    benchmark::DoNotOptimize(R.Insts);
    Stalls = R.TracesCompiled;
    SeededTraces = R.TracesSeeded;
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(R.Insts));
  }
  State.counters["compile_stalls"] = static_cast<double>(Stalls);
  State.counters["seeded"] = static_cast<double>(SeededTraces);
}
BENCHMARK(BM_SerialPinColdVsSeeded)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
