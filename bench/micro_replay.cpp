//===- bench/micro_replay.cpp - Capture & replay microbenchmarks ----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks of the persistent capture pipeline
// (host performance). BM_SuperPinRun isolates the -sprecord overhead on
// top of the syscall recording the engine already does for slices: arg 0
// is the plain engine (-spsysrecs-only baseline), arg 1 attaches the
// CaptureWriter sink. BM_EncodeCapture / BM_DecodeCapture measure the
// SPRL wire-format throughput (bytes/s), and BM_ReplayAll the re-execution
// rate of a captured run (items/s ≈ replayed guest instructions per
// second).
//
//===----------------------------------------------------------------------===//

#include "replay/CaptureWriter.h"
#include "replay/Log.h"
#include "replay/ReplayEngine.h"
#include "superpin/Engine.h"
#include "tools/Icount.h"
#include "workloads/Generator.h"

#include "benchmark/benchmark.h"

using namespace spin;
using namespace spin::os;
using namespace spin::replay;
using namespace spin::sp;
using namespace spin::vm;

static Program &replayProgram() {
  static Program Prog = [] {
    workloads::GenParams P;
    P.Name = "micro-replay";
    P.TargetInsts = 1u << 20;
    P.NumFuncs = 16;
    P.BlocksPerFunc = 8;
    P.AluPerBlock = 4;
    P.WorkingSetBytes = 1 << 16;
    P.SyscallMask = 63;
    P.Mix = workloads::SysMix::Mixed;
    return workloads::generateWorkload(P);
  }();
  return Prog;
}

static SpOptions benchOptions() {
  SpOptions Opts;
  Opts.SliceMs = 50;
  Opts.MaxSlices = 8;
  return Opts;
}

/// One captured run of the benchmark program, shared by the codec and
/// replay benchmarks below.
static RunCapture &capturedRun() {
  static RunCapture Cap = [] {
    CaptureWriter Writer;
    SpOptions Opts = benchOptions();
    Opts.Capture = &Writer;
    CostModel Model;
    runSuperPin(replayProgram(),
                tools::makeIcountTool(tools::IcountGranularity::BasicBlock),
                Opts, Model);
    return Writer.take();
  }();
  return Cap;
}

/// Engine run without (arg 0) and with (arg 1) the capture sink. The
/// delta is what -sprecord costs beyond the engine's own -spsysrecs
/// syscall recording; "log_bytes" sizes the resulting log.
static void BM_SuperPinRun(benchmark::State &State) {
  Program &Prog = replayProgram();
  CostModel Model;
  bool Capture = State.range(0) != 0;
  uint64_t LogBytes = 0, Slices = 0;
  for (auto _ : State) {
    CaptureWriter Writer;
    SpOptions Opts = benchOptions();
    if (Capture)
      Opts.Capture = &Writer;
    SpRunReport Rep = runSuperPin(
        Prog, tools::makeIcountTool(tools::IcountGranularity::BasicBlock),
        Opts, Model);
    benchmark::DoNotOptimize(Rep.SliceInsts);
    Slices = Rep.NumSlices;
    if (Capture)
      LogBytes = encodeCapture(Writer.capture()).size();
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(Rep.MasterInsts));
  }
  State.counters["slices"] = static_cast<double>(Slices);
  if (Capture)
    State.counters["log_bytes"] = static_cast<double>(LogBytes);
}
BENCHMARK(BM_SuperPinRun)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

static void BM_EncodeCapture(benchmark::State &State) {
  RunCapture &Cap = capturedRun();
  size_t Bytes = 0;
  for (auto _ : State) {
    std::vector<uint8_t> Encoded = encodeCapture(Cap);
    benchmark::DoNotOptimize(Encoded.data());
    Bytes = Encoded.size();
    State.SetBytesProcessed(State.bytes_processed() +
                            static_cast<int64_t>(Encoded.size()));
  }
  State.counters["log_bytes"] = static_cast<double>(Bytes);
}
BENCHMARK(BM_EncodeCapture);

static void BM_DecodeCapture(benchmark::State &State) {
  std::vector<uint8_t> Bytes = encodeCapture(capturedRun());
  for (auto _ : State) {
    std::optional<RunCapture> Cap = decodeCapture(Bytes);
    benchmark::DoNotOptimize(Cap->Slices.size());
    State.SetBytesProcessed(State.bytes_processed() +
                            static_cast<int64_t>(Bytes.size()));
  }
}
BENCHMARK(BM_DecodeCapture);

static void BM_ReplayAll(benchmark::State &State) {
  RunCapture &Cap = capturedRun();
  CostModel Model;
  for (auto _ : State) {
    ReplayEngine Engine(Cap, Model);
    ReplayReport Rep = Engine.replayAll(
        tools::makeIcountTool(tools::IcountGranularity::BasicBlock));
    benchmark::DoNotOptimize(Rep.ParityOk);
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(Rep.ReplayedInsts));
  }
  State.counters["parity_ok"] = static_cast<double>(capturedRun().Slices.size());
}
BENCHMARK(BM_ReplayAll)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
