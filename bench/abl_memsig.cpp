//===- bench/abl_memsig.cpp - Memory-signature extension (§4.4) -----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 4.4 documents a false positive — a loop counting only in memory,
// with registers and stack identical every iteration — and sketches an
// "enhanced version of the signature detection [that] could include
// results of memory operations". This bench constructs exactly that loop,
// shows the false positive corrupting the instruction count, and measures
// the fix's cost on the regular suite (where it never fires).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "os/DirectRun.h"
#include "support/ErrorHandling.h"
#include "vm/Assembler.h"

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;
using namespace spin::workloads;

static vm::Program memCounterLoop(unsigned Iters) {
  std::string Src = R"(
main:
  movi r2, counter
  movi r4, )" + std::to_string(Iters) +
                    R"(
  movi r3, 0
loop:
  incm [r2+0]
  ld64 r3, [r2+0]
  bge r3, r4, done
  movi r3, 0
  jmp loop
done:
  movi r0, 0
  movi r1, 0
  syscall
.data
counter: .word64 0
)";
  std::string Err;
  auto Prog = vm::assemble(Src, "memcounter", Err);
  if (!Prog)
    reportFatalError("memcounter assembly failed: " + Err);
  return std::move(*Prog);
}

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Flags.parse(Argc, Argv);
  os::CostModel Model;

  outs() << "Extension (Section 4.4): memory-operand signature\n\n";
  vm::Program Loop = memCounterLoop(400'000);
  os::DirectRunResult Native = os::runDirect(Loop);

  Table T;
  T.addColumn("Config", Table::Align::Left);
  T.addColumn("icount");
  T.addColumn("expected");
  T.addColumn("Correct", Table::Align::Left);
  T.addColumn("MemChecks");

  WorkloadInfo LoopInfo;
  LoopInfo.Name = "memcounter";
  LoopInfo.Cpi = 1.0;
  for (bool MemSig : {false, true}) {
    sp::SpOptions Opts = Flags.spOptions(LoopInfo);
    Opts.SliceMs = 17; // Boundaries land mid-loop.
    Opts.MemSignature = MemSig;
    auto Count = std::make_shared<IcountResult>();
    sp::SpRunReport Rep = sp::runSuperPin(
        Loop, makeIcountTool(IcountGranularity::Instruction, Count), Opts,
        Model);
    T.startRow();
    T.cell(MemSig ? "-spmemsig 1" : "-spmemsig 0");
    T.cell(Count->Total);
    T.cell(Native.Insts);
    T.cell(Count->Total == Native.Insts ? "yes" : "NO (false positive)");
    T.cell(Rep.Signature.MemChecks);
  }
  emit(T, Flags);

  // Overhead of the extension where it is not needed.
  outs() << "\nOverhead of -spmemsig 1 on regular workloads (icount2):\n\n";
  Table T2;
  T2.addColumn("Benchmark", Table::Align::Left);
  T2.addColumn("off(s)");
  T2.addColumn("on(s)");
  T2.addColumn("delta");
  for (const char *Name : {"crafty", "swim", "gcc"}) {
    const WorkloadInfo &Info = findWorkload(Name);
    vm::Program Prog = buildWorkload(Info, Flags.Scale);
    sp::SpOptions Opts = Flags.spOptions(Info);
    sp::SpRunReport Off = sp::runSuperPin(
        Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);
    Opts.MemSignature = true;
    sp::SpRunReport On = sp::runSuperPin(
        Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);
    T2.startRow();
    T2.cell(Name);
    T2.cell(Model.ticksToSeconds(Off.WallTicks), 3);
    T2.cell(Model.ticksToSeconds(On.WallTicks), 3);
    T2.cellPercent(double(On.WallTicks) / double(Off.WallTicks) - 1.0, 2);
  }
  emit(T2, Flags);
  return 0;
}
