//===- bench/fig3_icount1.cpp - Figure 3 reproduction ---------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Figure 3: icount1 (per-instruction counting) — Pin and SuperPin
// execution time relative to native, across the SPEC2000 suite.
// Paper result: Pin averages ~12x (1200%); SuperPin beats Pin by 3-7x.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spin;
using namespace spin::bench;
using namespace spin::tools;
using namespace spin::workloads;

int main(int Argc, char **Argv) {
  BenchFlags Flags;
  Flags.parse(Argc, Argv);
  os::CostModel Model;

  outs() << "Figure 3: icount1 runtime relative to native "
            "(100% = native)\n\n";
  Table T;
  T.addColumn("Benchmark", Table::Align::Left);
  T.addColumn("Pin");
  T.addColumn("SuperPin");
  T.addColumn("CountOK", Table::Align::Left);

  double PinSum = 0, SpSum = 0;
  unsigned Count = 0;
  for (const WorkloadInfo &Info : spec2000Suite()) {
    if (!Flags.selected(Info.Name))
      continue;
    vm::Program Prog = buildWorkload(Info, Flags.Scale);
    TripleRun R =
        runTriple(Prog, Info, IcountGranularity::Instruction, Flags, Model);
    double PinRel = double(R.PinTicks) / double(R.NativeTicks);
    double SpRel = double(R.Sp.WallTicks) / double(R.NativeTicks);
    T.startRow();
    T.cell(Info.Name);
    T.cellPercent(PinRel, 0);
    T.cellPercent(SpRel, 0);
    T.cell(R.IcountNative == R.IcountSp && R.Sp.PartitionOk ? "yes" : "NO");
    PinSum += PinRel;
    SpSum += SpRel;
    ++Count;
  }
  if (Count > 1) {
    T.startRow();
    T.cell("AVG");
    T.cellPercent(PinSum / Count, 0);
    T.cellPercent(SpSum / Count, 0);
    T.cell("");
  }
  emit(T, Flags);
  outs() << "\nPaper reference: Pin AVG ~1200%; SuperPin well below "
            "(3-7x faster than Pin).\n";
  return 0;
}
