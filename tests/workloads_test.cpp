//===- tests/workloads_test.cpp - Workload generator tests ----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Generator.h"
#include "workloads/Spec2000.h"

#include "os/DirectRun.h"

#include "gtest/gtest.h"

using namespace spin;
using namespace spin::os;
using namespace spin::vm;
using namespace spin::workloads;

namespace {

TEST(Workloads, SuiteHas26UniqueEntries) {
  const auto &Suite = spec2000Suite();
  EXPECT_EQ(Suite.size(), 26u);
  for (size_t I = 0; I != Suite.size(); ++I)
    for (size_t J = I + 1; J != Suite.size(); ++J)
      EXPECT_STRNE(Suite[I].Name, Suite[J].Name);
  // Alphabetical, as in the paper's figures.
  for (size_t I = 1; I != Suite.size(); ++I)
    EXPECT_LT(std::string(Suite[I - 1].Name), std::string(Suite[I].Name));
}

TEST(Workloads, EveryEntryTerminatesNearItsBudget) {
  for (const WorkloadInfo &Info : spec2000Suite()) {
    Program Prog = buildWorkload(Info, /*Scale=*/0.01);
    uint64_t Target = static_cast<uint64_t>(
        double(Info.DurationMs) * 1000.0 / Info.Cpi * 0.01);
    if (Target < 50'000)
      Target = 50'000;
    DirectRunResult R = runDirect(Prog, Target * 3 + 200'000);
    EXPECT_TRUE(R.Exited) << Info.Name << " did not terminate";
    EXPECT_EQ(R.ExitCode, 0) << Info.Name;
    // The generator solves the outer iteration count analytically; allow
    // one iteration of slack plus prologue rounding.
    double Ratio = double(R.Insts) / double(Target);
    EXPECT_GT(Ratio, 0.8) << Info.Name << " undershoots: " << R.Insts;
    EXPECT_LT(Ratio, 1.2) << Info.Name << " overshoots: " << R.Insts;
  }
}

TEST(Workloads, DeterministicGenerationAndExecution) {
  const WorkloadInfo &Info = findWorkload("gcc");
  Program A = buildWorkload(Info, 0.01);
  Program B = buildWorkload(Info, 0.01);
  ASSERT_EQ(A.Text.size(), B.Text.size());
  for (size_t I = 0; I != A.Text.size(); ++I)
    EXPECT_EQ(A.Text[I].Imm, B.Text[I].Imm) << I;
  DirectRunResult Ra = runDirect(A);
  DirectRunResult Rb = runDirect(B);
  EXPECT_EQ(Ra.Insts, Rb.Insts);
  EXPECT_EQ(Ra.Output, Rb.Output);
}

TEST(Workloads, DistinctSeedsGiveDistinctOutputs) {
  DirectRunResult Gcc = runDirect(buildWorkload(findWorkload("gcc"), 0.01));
  DirectRunResult Vpr = runDirect(buildWorkload(findWorkload("vpr"), 0.01));
  EXPECT_NE(Gcc.Output, Vpr.Output);
}

TEST(Workloads, SyscallMixesProduceExpectedCalls) {
  // gcc: brk-heavy => many syscalls; swim: pure compute => only the final
  // write+exit.
  DirectRunResult Gcc = runDirect(buildWorkload(findWorkload("gcc"), 0.05));
  DirectRunResult Swim =
      runDirect(buildWorkload(findWorkload("swim"), 0.05));
  EXPECT_GT(Gcc.Syscalls, 25u);
  EXPECT_EQ(Swim.Syscalls, 2u);
}

TEST(Workloads, ScaleControlsLength) {
  const WorkloadInfo &Info = findWorkload("crafty");
  DirectRunResult Small = runDirect(buildWorkload(Info, 0.01));
  DirectRunResult Large = runDirect(buildWorkload(Info, 0.03));
  double Ratio = double(Large.Insts) / double(Small.Insts);
  EXPECT_GT(Ratio, 2.0);
  EXPECT_LT(Ratio, 4.0);
}

TEST(Workloads, FootprintTracksParameters) {
  GenParams Small;
  Small.NumFuncs = 4;
  Small.BlocksPerFunc = 4;
  Small.TargetInsts = 100'000;
  GenParams Big = Small;
  Big.NumFuncs = 40;
  Big.BlocksPerFunc = 16;
  Program SmallProg = generateWorkload(Small);
  Program BigProg = generateWorkload(Big);
  EXPECT_GT(BigProg.Text.size(), SmallProg.Text.size() * 10);
}

TEST(Workloads, PointerChaseChasesPointers) {
  GenParams P;
  P.PointerChase = true;
  P.TargetInsts = 60'000;
  P.WorkingSetBytes = 1 << 14;
  Program Prog = generateWorkload(P);
  DirectRunResult R = runDirect(Prog);
  EXPECT_TRUE(R.Exited);
}

TEST(Workloads, UnknownNameIsFatal) {
  EXPECT_DEATH(findWorkload("not-a-benchmark"), "unknown workload");
}

} // namespace
