//===- tests/TestPrograms.h - Shared guest programs for tests ---*- C++ -*-===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small assembled guest programs shared across test suites.
///
//===----------------------------------------------------------------------===//

#ifndef SUPERPIN_TESTS_TESTPROGRAMS_H
#define SUPERPIN_TESTS_TESTPROGRAMS_H

#include "vm/Assembler.h"

#include "gtest/gtest.h"

#include <string>

namespace spin::test {

/// Assembles or aborts the test with the assembler diagnostic.
inline vm::Program mustAssemble(std::string_view Source,
                                std::string_view Name) {
  std::string Err;
  std::optional<vm::Program> Prog = vm::assemble(Source, Name, Err);
  if (!Prog) {
    ADD_FAILURE() << "assembly failed: " << Err;
    abort();
  }
  return std::move(*Prog);
}

/// Counts down from \p N with a data store per iteration, then exits 0.
/// Dynamic length: 3 + 4*N + 3 (including the exit syscall).
inline vm::Program makeCountdown(unsigned N) {
  std::string Src = R"(
main:
  movi r1, )" + std::to_string(N) +
                    R"(
  movi r2, 0
  movi r3, buf
loop:
  addi r1, r1, -1
  st64 [r3+0], r1
  ld64 r4, [r3+0]
  bne r1, r2, loop
  movi r0, 0
  movi r1, 0
  syscall
.data
buf: .space 64
)";
  return mustAssemble(Src, "countdown");
}

/// The paper's Section 4.4 signature false positive: a loop whose only
/// iteration-varying state is a memory counter (registers and stack are
/// identical at the loop head on every iteration).
inline vm::Program makeMemCounterLoop(unsigned Iters) {
  std::string Src = R"(
main:
  movi r2, counter
  movi r4, )" + std::to_string(Iters) +
                    R"(
  movi r3, 0
loop:
  incm [r2+0]
  ld64 r3, [r2+0]
  bge r3, r4, done
  movi r3, 0
  jmp loop
done:
  movi r0, 0
  movi r1, 0
  syscall
.data
counter: .word64 0
)";
  return mustAssemble(Src, "memcounter");
}

/// Two counted loops, one nested in the other. The inner loop is a
/// single-block self-loop (depth 2); the outer loop is a three-block
/// reducible loop (depth 1). Runs Outer x Inner inner iterations.
inline vm::Program makeNestedLoops(unsigned Outer, unsigned Inner) {
  std::string Src = R"(
main:
  movi r1, )" + std::to_string(Outer) +
                    R"(
  movi r5, 0
outer:
  movi r2, )" + std::to_string(Inner) +
                    R"(
inner:
  addi r2, r2, -1
  bne r2, r5, inner
  addi r1, r1, -1
  bne r1, r5, outer
  movi r0, 0
  movi r1, 0
  syscall
)";
  return mustAssemble(Src, "nested");
}

/// One loop header fed by two distinct back edges (latches): natural-loop
/// discovery must merge them into a single Loop, as LLVM's LoopInfo does.
inline vm::Program makeSharedHeaderLoop(unsigned N) {
  std::string Src = R"(
main:
  movi r1, )" + std::to_string(N) +
                    R"(
  movi r5, 0
  movi r6, 5
head:
  addi r1, r1, -1
  beq r1, r6, latch2
  bne r1, r5, head
  jmp done
latch2:
  jmp head
done:
  movi r0, 0
  movi r1, 0
  syscall
)";
  return mustAssemble(Src, "sharedheader");
}

/// The classic irreducible region: a two-block cycle (a <-> b) entered at
/// both blocks from the entry branch, so neither dominates the other and
/// no natural loop forms. Terminates because r1 counts up to r2.
inline vm::Program makeIrreducible() {
  std::string Src = R"(
main:
  movi r1, 0
  movi r2, 4
  beq r1, r2, b
a:
  addi r1, r1, 1
  bge r1, r2, done
  jmp b
b:
  addi r1, r1, 1
  bge r1, r2, done
  jmp a
done:
  movi r0, 0
  movi r1, 0
  syscall
)";
  return mustAssemble(Src, "irreducible");
}

} // namespace spin::test

#endif // SUPERPIN_TESTS_TESTPROGRAMS_H
