//===- tests/fault_test.cpp - Fault injection & recovery tests ------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The src/fault subsystem and the engine's recovery ladder: FaultPlan
// determinism and explicit-spec precedence, the per-kind fault matrix
// (every FaultKind exercised against its recovery path), coverage
// accounting invariants, the circuit breaker, seeded-plan determinism,
// flags-off identity, and SpOptions::validate().
//
//===----------------------------------------------------------------------===//

#include "fault/FaultPlan.h"

#include "os/CostModel.h"
#include "superpin/Engine.h"
#include "superpin/Reporting.h"
#include "support/RawOstream.h"
#include "tools/Icount.h"
#include "workloads/Generator.h"

#include "gtest/gtest.h"

using namespace spin;
using namespace spin::fault;
using namespace spin::sp;
using namespace spin::tools;
using namespace spin::vm;
using namespace spin::workloads;

namespace {

// --- FaultPlan -----------------------------------------------------------

TEST(Plan, DefaultPlanIsDisabledAndEmpty) {
  FaultPlan Plan;
  EXPECT_FALSE(Plan.enabled());
  for (uint32_t N = 0; N != 32; ++N)
    EXPECT_FALSE(Plan.forSlice(N).has_value());
}

TEST(Plan, ZeroRateSeededPlanIsDisabled) {
  FaultPlan Plan(/*Seed=*/42, /*Rate=*/0.0);
  EXPECT_FALSE(Plan.enabled());
  for (uint32_t N = 0; N != 32; ++N)
    EXPECT_FALSE(Plan.forSlice(N).has_value());
}

bool sameSpec(const std::optional<FaultSpec> &A,
              const std::optional<FaultSpec> &B) {
  if (A.has_value() != B.has_value())
    return false;
  if (!A)
    return true;
  return A->Kind == B->Kind && A->Slice == B->Slice &&
         A->AtInst == B->AtInst && A->SysIndex == B->SysIndex &&
         A->FailAttempts == B->FailAttempts;
}

TEST(Plan, SeededDrawIsPureAndSeedDeterministic) {
  FaultPlan A(17, 0.5), B(17, 0.5);
  EXPECT_TRUE(A.enabled());
  unsigned Faulted = 0;
  for (uint32_t N = 0; N != 200; ++N) {
    std::optional<FaultSpec> First = A.forSlice(N);
    // Pure: the same plan gives the same answer on every call, in any
    // order; deterministic: a second plan with the same seed agrees.
    EXPECT_TRUE(sameSpec(First, A.forSlice(N))) << "slice " << N;
    EXPECT_TRUE(sameSpec(First, B.forSlice(N))) << "slice " << N;
    if (First) {
      ++Faulted;
      EXPECT_EQ(First->Slice, N);
      EXPECT_GE(First->AtInst, 1u);
    }
  }
  // Rate 0.5 over 200 slices: a degenerate all-or-nothing draw would mean
  // the PRNG keying is broken.
  EXPECT_GT(Faulted, 50u);
  EXPECT_LT(Faulted, 150u);
}

TEST(Plan, DifferentSeedsDrawDifferentPlans) {
  FaultPlan A(17, 0.5), C(18, 0.5);
  bool AnyDifference = false;
  for (uint32_t N = 0; N != 200 && !AnyDifference; ++N)
    AnyDifference = !sameSpec(A.forSlice(N), C.forSlice(N));
  EXPECT_TRUE(AnyDifference);
}

TEST(Plan, ExplicitSpecOverridesSeededDraw) {
  FaultPlan Plan(17, 1.0); // every slice draws a seeded fault
  FaultSpec S;
  S.Kind = FaultKind::SliceStall;
  S.Slice = 5;
  S.AtInst = 7;
  S.SysIndex = 3;
  S.FailAttempts = 9;
  Plan.add(S);
  std::optional<FaultSpec> Got = Plan.forSlice(5);
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(Got->Kind, FaultKind::SliceStall);
  EXPECT_EQ(Got->AtInst, 7u);
  EXPECT_EQ(Got->SysIndex, 3u);
  EXPECT_EQ(Got->FailAttempts, 9u);
}

TEST(Plan, ExplicitOnlyPlanIsEnabled) {
  FaultPlan Plan;
  FaultSpec S;
  S.Slice = 2;
  Plan.add(S);
  EXPECT_TRUE(Plan.enabled());
  EXPECT_TRUE(Plan.forSlice(2).has_value());
  EXPECT_FALSE(Plan.forSlice(3).has_value());
}

TEST(Plan, KindNamesAreStable) {
  EXPECT_STREQ(faultKindName(FaultKind::SliceCrash), "slice-crash");
  EXPECT_STREQ(faultKindName(FaultKind::SigSuppress), "sig-suppress");
  EXPECT_STREQ(faultKindName(FaultKind::PlaybackCorrupt), "playback-corrupt");
  EXPECT_STREQ(faultKindName(FaultKind::SysrecDrop), "sysrec-drop");
  EXPECT_STREQ(faultKindName(FaultKind::SpillLoss), "spill-loss");
  EXPECT_STREQ(faultKindName(FaultKind::SliceStall), "slice-stall");
}

// --- Engine fault matrix -------------------------------------------------

Program faultWorkload(uint64_t TargetInsts = 400'000) {
  GenParams P;
  P.Name = "fault";
  P.TargetInsts = TargetInsts;
  P.NumFuncs = 6;
  P.BlocksPerFunc = 6;
  P.AluPerBlock = 3;
  P.WorkingSetBytes = 1 << 14;
  P.SyscallMask = 63;
  P.Mix = SysMix::Mixed;
  return generateWorkload(P);
}

SpOptions faultOptions() {
  SpOptions Opts;
  Opts.SliceMs = 50;
  Opts.PhysCpus = 8;
  Opts.VirtCpus = 8;
  return Opts;
}

SpRunReport runWithPlan(const FaultPlan *Plan,
                        SpOptions Opts = faultOptions()) {
  Program Prog = faultWorkload();
  Opts.Fault = Plan;
  os::CostModel Model;
  return runSuperPin(Prog, makeIcountTool(IcountGranularity::BasicBlock),
                     Opts, Model);
}

std::string reportText(const SpRunReport &Rep) {
  std::string Text;
  RawStringOstream OS(Text);
  printReport(Rep, os::CostModel(), OS);
  OS.flush();
  return Text;
}

/// The acceptance invariant: every window's outcome is accounted — the
/// per-slice covered counts add up to the report's coverage, coverage
/// never exceeds the master's stream, a loss-free run has exact coverage,
/// and the attempts histogram saw every merged window.
void expectAccounted(const SpRunReport &Rep) {
  uint64_t Sum = 0;
  for (const SliceInfo &S : Rep.Slices)
    Sum += S.CoveredInsts;
  EXPECT_EQ(Sum, Rep.CoverageInsts);
  EXPECT_LE(Rep.CoverageInsts, Rep.MasterInsts);
  if (Rep.LostSlices == 0) {
    EXPECT_TRUE(Rep.PartitionOk);
    EXPECT_EQ(Rep.CoverageInsts, Rep.MasterInsts);
  }
  EXPECT_EQ(Rep.SliceAttemptsHist.count(), Rep.NumSlices);
}

const SliceInfo *findSlice(const SpRunReport &Rep, uint32_t Num) {
  for (const SliceInfo &S : Rep.Slices)
    if (S.Num == Num)
      return &S;
  return nullptr;
}

FaultSpec transientSpec(FaultKind Kind, uint32_t Slice = 1) {
  FaultSpec S;
  S.Kind = Kind;
  S.Slice = Slice;
  S.AtInst = 1000;
  S.SysIndex = 0;
  S.FailAttempts = 1;
  return S;
}

TEST(Matrix, SliceCrashRetriesAndRecovers) {
  FaultPlan Plan;
  Plan.add(transientSpec(FaultKind::SliceCrash));
  SpRunReport Rep = runWithPlan(&Plan);
  EXPECT_EQ(Rep.FaultsInjected, 1u);
  EXPECT_GE(Rep.RetriedSlices, 1u);
  EXPECT_EQ(Rep.RecoveredSlices, 1u);
  EXPECT_EQ(Rep.LostSlices, 0u);
  EXPECT_EQ(Rep.QuarantinedSlices, 0u);
  EXPECT_GT(Rep.WastedSliceInsts, 0u) << "the killed attempt retired work";
  EXPECT_TRUE(Rep.PartitionOk);
  const SliceInfo *S = findSlice(Rep, 1);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Attempts, 2u) << "one transient failure, one clean retry";
  EXPECT_EQ(S->CoveredInsts, S->ExpectedInsts);
  expectAccounted(Rep);
}

TEST(Matrix, SigSuppressRunawayKilledByWatchdog) {
  FaultPlan Plan;
  Plan.add(transientSpec(FaultKind::SigSuppress));
  SpRunReport Rep = runWithPlan(&Plan);
  EXPECT_EQ(Rep.FaultsInjected, 1u);
  EXPECT_GE(Rep.WatchdogKills, 1u)
      << "an undetected signature must trip the runaway watchdog";
  EXPECT_GE(Rep.RetriedSlices, 1u);
  EXPECT_EQ(Rep.RecoveredSlices, 1u);
  EXPECT_EQ(Rep.LostSlices, 0u);
  EXPECT_TRUE(Rep.PartitionOk);
  expectAccounted(Rep);
}

TEST(Matrix, SliceStallKilledByWatchdog) {
  FaultPlan Plan;
  Plan.add(transientSpec(FaultKind::SliceStall));
  SpRunReport Rep = runWithPlan(&Plan);
  EXPECT_EQ(Rep.FaultsInjected, 1u);
  EXPECT_GE(Rep.WatchdogKills, 1u);
  EXPECT_GE(Rep.RetriedSlices, 1u);
  EXPECT_EQ(Rep.RecoveredSlices, 1u);
  EXPECT_EQ(Rep.LostSlices, 0u);
  EXPECT_TRUE(Rep.PartitionOk);
  expectAccounted(Rep);
}

TEST(Matrix, PlaybackCorruptDetectedByHashVerify) {
  FaultPlan Plan;
  Plan.add(transientSpec(FaultKind::PlaybackCorrupt));
  SpRunReport Rep = runWithPlan(&Plan);
  EXPECT_EQ(Rep.FaultsInjected, 1u);
  EXPECT_GE(Rep.PlaybackDivergences, 1u)
      << "corrupted record effects must fail hash verification";
  EXPECT_GE(Rep.RetriedSlices, 1u);
  EXPECT_EQ(Rep.RecoveredSlices, 1u);
  EXPECT_EQ(Rep.LostSlices, 0u);
  EXPECT_TRUE(Rep.PartitionOk);
  expectAccounted(Rep);
}

TEST(Matrix, SysrecDropDesynchronisesPlayback) {
  FaultPlan Plan;
  Plan.add(transientSpec(FaultKind::SysrecDrop));
  SpRunReport Rep = runWithPlan(&Plan);
  EXPECT_EQ(Rep.FaultsInjected, 1u);
  EXPECT_GE(Rep.PlaybackDivergences + Rep.WatchdogKills, 1u)
      << "a dropped record must surface as divergence or runaway";
  EXPECT_GE(Rep.RetriedSlices, 1u);
  EXPECT_EQ(Rep.RecoveredSlices, 1u);
  EXPECT_EQ(Rep.LostSlices, 0u);
  EXPECT_TRUE(Rep.PartitionOk);
  expectAccounted(Rep);
}

TEST(Matrix, SpillLossLosesDeferredWindows) {
  FaultPlan Plan;
  for (uint32_t N = 0; N != 64; ++N) {
    FaultSpec S;
    S.Kind = FaultKind::SpillLoss;
    S.Slice = N;
    S.FailAttempts = ~0u;
    Plan.add(S);
  }
  SpOptions Opts = faultOptions();
  Opts.DeferSlices = true;
  Opts.MaxSlices = 2; // force spills
  SpRunReport Rep = runWithPlan(&Plan, Opts);
  EXPECT_GT(Rep.SpilledSlices, 0u);
  EXPECT_GE(Rep.FaultsInjected, 1u);
  EXPECT_GE(Rep.LostSlices, 1u) << "a lost spill can never be re-run";
  EXPECT_LT(Rep.CoverageInsts, Rep.MasterInsts);
  expectAccounted(Rep);
}

TEST(Matrix, PersistentFaultQuarantinesAndAccountsLoss) {
  FaultPlan Plan;
  FaultSpec S = transientSpec(FaultKind::SliceCrash);
  S.AtInst = 500;
  S.FailAttempts = ~0u; // follows the window through every attempt
  Plan.add(S);
  SpRunReport Rep = runWithPlan(&Plan);
  EXPECT_EQ(Rep.FaultsInjected, 1u);
  EXPECT_GE(Rep.RetriedSlices, 1u);
  EXPECT_EQ(Rep.QuarantinedSlices, 1u)
      << "an exhausted retry budget parks the window";
  EXPECT_EQ(Rep.RecoveredSlices, 0u);
  EXPECT_EQ(Rep.LostSlices, 1u);
  EXPECT_LT(Rep.CoverageInsts, Rep.MasterInsts);
  const SliceInfo *Info = findSlice(Rep, 1);
  ASSERT_NE(Info, nullptr);
  // The relaxed quarantine re-run still crashes around inst 500 (block
  // granularity can overshoot slightly), so only that prefix of the
  // window counts as covered.
  EXPECT_GE(Info->CoveredInsts, 500u);
  EXPECT_LT(Info->CoveredInsts, Info->ExpectedInsts);
  EXPECT_GE(Info->Attempts, 3u) << "first run + retries + quarantine";
  expectAccounted(Rep);
}

TEST(Breaker, TripsUnderSustainedFailureAndKeepsAccounting) {
  FaultPlan Plan;
  for (uint32_t N = 0; N != 64; ++N) {
    FaultSpec S;
    S.Kind = FaultKind::SliceCrash;
    S.Slice = N;
    S.AtInst = 100;
    S.FailAttempts = ~0u;
    Plan.add(S);
  }
  SpOptions Opts = faultOptions();
  Opts.RetryBudget = 0;
  SpRunReport Rep = runWithPlan(&Plan, Opts);
  EXPECT_TRUE(Rep.BreakerTripped)
      << "every window failing must trip the circuit breaker";
  EXPECT_GE(Rep.QuarantinedSlices, Opts.BreakerMinWindows);
  EXPECT_GE(Rep.LostSlices, 1u);
  EXPECT_LT(Rep.CoverageInsts, Rep.MasterInsts);
  expectAccounted(Rep);
}

// --- Determinism & identity ----------------------------------------------

TEST(Determinism, SameSeedGivesBitIdenticalReports) {
  FaultPlan PlanA(17, 0.5), PlanB(17, 0.5);
  SpRunReport A = runWithPlan(&PlanA);
  SpRunReport B = runWithPlan(&PlanB);
  EXPECT_EQ(reportText(A), reportText(B));
  EXPECT_EQ(A.WallTicks, B.WallTicks);
  EXPECT_EQ(A.FaultsInjected, B.FaultsInjected);
  EXPECT_EQ(A.CoverageInsts, B.CoverageInsts);
  expectAccounted(A);
}

TEST(Determinism, DisabledPlanIsIdenticalToNoPlan) {
  SpRunReport Bare = runWithPlan(nullptr);
  FaultPlan Disabled; // enabled() == false: engine must ignore it entirely
  SpRunReport WithPlan = runWithPlan(&Disabled);
  EXPECT_EQ(reportText(Bare), reportText(WithPlan));
  EXPECT_EQ(Bare.WallTicks, WithPlan.WallTicks);
  EXPECT_EQ(WithPlan.FaultsInjected, 0u);
  EXPECT_EQ(WithPlan.SliceAttemptsHist.count(), WithPlan.NumSlices);
  // Flags-off reports must not even mention the fault machinery.
  EXPECT_EQ(reportText(Bare).find("fault"), std::string::npos);
}

TEST(Determinism, SimFaultMatrixIsByteIdenticalUnderHostWorkers) {
  // Every sim-side fault kind must recover identically whether the slice
  // bodies run on the sim thread or on -spmp workers: the fault fires in
  // the recorded charge stream, the retry ladder runs sim-side either way,
  // and virtual time may not notice which thread executed the body.
  for (unsigned K = 0; K != NumFaultKinds; ++K) {
    FaultPlan Plan;
    Plan.add(transientSpec(static_cast<FaultKind>(K)));
    SpRunReport Serial = runWithPlan(&Plan);
    for (uint32_t Workers : {2u, 4u}) {
      SCOPED_TRACE(std::string(faultKindName(static_cast<FaultKind>(K))) +
                   " x -spmp " + std::to_string(Workers));
      SpOptions Opts = faultOptions();
      Opts.HostWorkers = Workers;
      SpRunReport Host = runWithPlan(&Plan, Opts);
      EXPECT_EQ(Host.FiniOutput, Serial.FiniOutput);
      EXPECT_EQ(Host.Output, Serial.Output);
      EXPECT_EQ(Host.WallTicks, Serial.WallTicks);
      EXPECT_EQ(Host.ExitCode, Serial.ExitCode);
      EXPECT_EQ(Host.CoverageInsts, Serial.CoverageInsts);
      EXPECT_EQ(Host.PartitionOk, Serial.PartitionOk);
      EXPECT_EQ(Host.FaultsInjected, Serial.FaultsInjected);
      EXPECT_EQ(Host.RecoveredSlices, Serial.RecoveredSlices);
      EXPECT_EQ(Host.LostSlices, Serial.LostSlices);
      expectAccounted(Host);
    }
  }
}

// --- SpOptions::validate() ------------------------------------------------

TEST(Validation, DefaultOptionsAreValid) {
  EXPECT_EQ(faultOptions().validate(), "");
}

TEST(Validation, RejectsZeroRunningSlices) {
  SpOptions Opts = faultOptions();
  Opts.MaxSlices = 0;
  EXPECT_EQ(Opts.validate(),
            "-spslices must be at least 1 (0 running slices can never make "
            "progress; use -sp 0 for serial Pin)");
}

TEST(Validation, RejectsZeroLengthTimeslice) {
  SpOptions Opts = faultOptions();
  Opts.SliceMs = 0;
  EXPECT_EQ(Opts.validate(),
            "-spmsec must be at least 1 (a zero-length timeslice would "
            "spawn unbounded zero-work slices)");
}

TEST(Validation, RejectsSysrecOverflow) {
  SpOptions Opts = faultOptions();
  Opts.MaxSysRecs = (1ull << 32) + 1;
  EXPECT_EQ(Opts.validate(),
            "-spsysrecs exceeds the 2^32 record-count limit of the capture "
            "format");
  Opts.MaxSysRecs = 1ull << 32; // the boundary itself is allowed
  EXPECT_EQ(Opts.validate(), "");
}

TEST(Validation, RejectsOutOfRangeFaultRate) {
  SpOptions Opts = faultOptions();
  FaultPlan Plan(1, 1.5);
  Opts.Fault = &Plan;
  EXPECT_EQ(Opts.validate(), "-spfault rate must be within [0, 1]");
}

TEST(Validation, RejectsBadMachineShape) {
  SpOptions Opts = faultOptions();
  Opts.PhysCpus = 0;
  EXPECT_FALSE(Opts.validate().empty());
  Opts = faultOptions();
  Opts.VirtCpus = 2;
  Opts.PhysCpus = 4;
  EXPECT_FALSE(Opts.validate().empty());
}

} // namespace
