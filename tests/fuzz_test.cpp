//===- tests/fuzz_test.cpp - Random-program differential testing ----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Generates random but terminating-by-construction guest programs and
// differentially tests the three execution engines on them: the plain
// interpreter (ground truth), serial MiniPin, and SuperPin. Any semantic
// divergence between the execution paths, any slice mis-partitioning, and
// any signature/playback defect shows up as a count or output mismatch.
//
//===----------------------------------------------------------------------===//

#include "os/DirectRun.h"
#include "pin/Runner.h"
#include "superpin/Engine.h"
#include "support/Random.h"
#include "tools/Icount.h"
#include "vm/ProgramBuilder.h"
#include "vm/Verifier.h"

#include "gtest/gtest.h"

using namespace spin;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::tools;
using namespace spin::vm;

namespace {

/// Builds a random program. Termination is guaranteed by construction:
/// all loops are counted with dedicated registers, and functions may only
/// call higher-numbered functions (no recursion).
///
/// Register convention: r12 = zero, r11 = data base, r13/r14 = loop
/// counters (outer/inner), r1-r10 scratch, r6 = checksum.
class RandomProgram {
public:
  explicit RandomProgram(uint64_t Seed) : Rng(Seed), B("fuzz") {}

  Program build() {
    DataAddr = B.allocData(4096, 4096);
    OutAddr = B.allocData(8, 8);
    unsigned NumFuncs = 1 + Rng.nextBelow(4);

    // Emit leaf-most functions first so calls only go "upward" in index
    // (downward in address), guaranteeing acyclic calls.
    std::vector<ProgramBuilder::LabelId> FuncLabels;
    for (unsigned F = 0; F != NumFuncs; ++F) {
      ProgramBuilder::LabelId L = B.createLabel();
      B.bind(L);
      emitFunction(FuncLabels); // may call any already-emitted function
      FuncLabels.push_back(L);
    }

    B.defineSymbol("main");
    B.movi(Reg{12}, 0);
    B.movi(Reg{11}, static_cast<int64_t>(DataAddr));
    B.movi(Reg{6}, static_cast<int64_t>(Rng.nextBelow(1000)));
    // Outer driver loop.
    unsigned OuterIters = 40 + Rng.nextBelow(120);
    B.movi(Reg{13}, OuterIters);
    ProgramBuilder::LabelId Outer = B.createLabel();
    B.bind(Outer);
    for (unsigned I = 0, N = 1 + Rng.nextBelow(3); I != N; ++I)
      B.call(FuncLabels[Rng.nextBelow(FuncLabels.size())]);
    maybeSyscall();
    B.addi(Reg{13}, Reg{13}, -1);
    B.bne(Reg{13}, Reg{12}, Outer);

    // Write the checksum, then exit 0.
    B.movi(Reg{1}, static_cast<int64_t>(OutAddr));
    B.st64(Reg{1}, 0, Reg{6});
    B.movi(Reg{1}, 1);
    B.movi(Reg{2}, static_cast<int64_t>(OutAddr));
    B.movi(Reg{3}, 8);
    B.movi(Reg{0}, 1); // write
    B.syscall();
    B.movi(Reg{0}, 0); // exit
    B.movi(Reg{1}, 0);
    B.syscall();
    return B.take();
  }

private:
  SplitMix64 Rng;
  ProgramBuilder B;
  uint64_t DataAddr = 0;
  uint64_t OutAddr = 0;

  Reg scratch() { return Reg{1 + unsigned(Rng.nextBelow(5))}; } // r1-r5

  /// One random non-control instruction.
  void emitOp() {
    Reg D = scratch(), A = scratch(), C = scratch();
    switch (Rng.nextBelow(14)) {
    case 0:
      B.add(D, A, C);
      break;
    case 1:
      B.sub(D, A, C);
      break;
    case 2:
      B.mul(D, A, C);
      break;
    case 3:
      B.divu(D, A, C); // div-by-zero is defined (RISC-V semantics)
      break;
    case 4:
      B.xor_(Reg{6}, Reg{6}, A);
      break;
    case 5:
      B.shli(D, A, static_cast<int64_t>(Rng.nextBelow(8)));
      break;
    case 6:
      B.slt(D, A, C);
      break;
    case 7:
      B.movi(D, static_cast<int64_t>(Rng.nextBelow(1 << 20)));
      break;
    case 8: { // load from data
      B.andi(D, A, 4088 & ~7); // offset 0..4080, 8-aligned
      B.add(D, D, Reg{11});
      B.ld64(C, D, 0);
      B.xor_(Reg{6}, Reg{6}, C);
      break;
    }
    case 9: { // store to data
      B.andi(D, A, 4088 & ~7);
      B.add(D, D, Reg{11});
      B.st64(D, 0, Reg{6});
      break;
    }
    case 10:
      B.incm(Reg{11}, static_cast<int64_t>(Rng.nextBelow(500) * 8));
      break;
    case 11: { // balanced-ish diamond (sides may differ in count; all
               // engines execute identically, so that is fine here)
      ProgramBuilder::LabelId Else = B.createLabel();
      ProgramBuilder::LabelId End = B.createLabel();
      B.andi(D, Reg{6}, 1 << Rng.nextBelow(4));
      B.beq(D, Reg{12}, Else);
      B.xori(Reg{6}, Reg{6}, 0x11);
      B.jmp(End);
      B.bind(Else);
      B.addi(Reg{6}, Reg{6}, 3);
      B.bind(End);
      break;
    }
    case 12:
      B.push(A);
      B.pop(A);
      break;
    case 13:
      B.sar(D, A, C);
      break;
    }
  }

  void maybeSyscall() {
    switch (Rng.nextBelow(6)) {
    case 0: // getpid (replayable)
      B.movi(Reg{0}, 7);
      B.syscall();
      B.xor_(Reg{6}, Reg{6}, Reg{0});
      break;
    case 1: // rand (duplicable)
      B.movi(Reg{0}, 8);
      B.syscall();
      B.xor_(Reg{6}, Reg{6}, Reg{0});
      break;
    case 2: // brk query (duplicable)
      B.movi(Reg{0}, 3);
      B.movi(Reg{1}, 0);
      B.syscall();
      break;
    default:
      break; // most iterations: no syscall
    }
  }

  void emitFunction(const std::vector<ProgramBuilder::LabelId> &Callees) {
    B.push(Reg{14});
    unsigned Iters = 2 + Rng.nextBelow(8);
    B.movi(Reg{14}, Iters);
    ProgramBuilder::LabelId Loop = B.createLabel();
    B.bind(Loop);
    for (unsigned I = 0, N = 3 + Rng.nextBelow(10); I != N; ++I)
      emitOp();
    if (!Callees.empty() && Rng.nextBool(0.5))
      B.call(Callees[Rng.nextBelow(Callees.size())]);
    B.addi(Reg{14}, Reg{14}, -1);
    B.bne(Reg{14}, Reg{12}, Loop);
    B.pop(Reg{14});
    B.ret();
  }
};

class RandomProgramFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramFuzz, EnginesAgree) {
  Program Prog = RandomProgram(GetParam()).build();
  std::vector<VerifyIssue> Issues = verifyProgram(Prog);
  ASSERT_TRUE(Issues.empty()) << formatVerifyIssue(Prog, Issues[0]);

  DirectRunResult Native = runDirect(Prog, 50'000'000);
  ASSERT_TRUE(Native.Exited) << "fuzz program must terminate";
  ASSERT_EQ(Native.Output.size(), 8u) << "checksum must be written";

  CostModel Model;
  auto SerialCount = std::make_shared<IcountResult>();
  RunReport Serial = runSerialPin(
      Prog, Model, 100,
      makeIcountTool(IcountGranularity::Instruction, SerialCount));
  EXPECT_EQ(SerialCount->Total, Native.Insts);
  EXPECT_EQ(Serial.Output, Native.Output);

  sp::SpOptions Opts;
  Opts.SliceMs = 3 + GetParam() % 17; // vary boundary placement per seed
  auto SpCount = std::make_shared<IcountResult>();
  sp::SpRunReport Sp = sp::runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, SpCount), Opts,
      Model);
  EXPECT_EQ(SpCount->Total, Native.Insts);
  EXPECT_EQ(Sp.Output, Native.Output);
  EXPECT_TRUE(Sp.PartitionOk);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramFuzz,
                         ::testing::Range(uint64_t(1), uint64_t(25)));

} // namespace
