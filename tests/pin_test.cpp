//===- tests/pin_test.cpp - MiniPin engine tests --------------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pin/CodeCache.h"
#include "pin/Compiler.h"
#include "pin/PinVm.h"
#include "pin/Runner.h"
#include "pin/Tool.h"

#include "TestPrograms.h"
#include "os/DirectRun.h"
#include "os/Kernel.h"

#include "gtest/gtest.h"

using namespace spin;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::test;
using namespace spin::vm;

namespace {

/// A tool assembled from lambdas, for white-box engine tests.
class LambdaTool : public Tool {
public:
  using InstrumentFn = std::function<void(Trace &)>;
  LambdaTool(SpServices &Services, InstrumentFn Fn)
      : Tool(Services), Fn(std::move(Fn)) {}
  std::string_view name() const override { return "lambda"; }
  void instrumentTrace(Trace &T) override { Fn(T); }

private:
  InstrumentFn Fn;
};

// --- Trace compilation --------------------------------------------------

TEST(Compiler, TraceEndsAtUnconditionalFlow) {
  Program P = mustAssemble(R"(
main:
  addi r1, r1, 1
  addi r1, r1, 2
  jmp main
)",
                           "t");
  CostModel Model;
  auto T = compileTrace(P, P.EntryPc, Model, nullptr);
  EXPECT_EQ(T->Steps.size(), 3u);
  EXPECT_EQ(T->NumBbls, 1u);
  EXPECT_EQ(T->Steps.back().Inst->Op, Opcode::Jmp);
}

TEST(Compiler, TraceSpansConditionalBranches) {
  Program P = mustAssemble(R"(
main:
  addi r1, r1, 1
  beq r1, r2, main
  addi r1, r1, 2
  beq r1, r3, main
  addi r1, r1, 3
  jmp main
)",
                           "t");
  CostModel Model;
  auto T = compileTrace(P, P.EntryPc, Model, nullptr);
  // MaxBbls default 3: bbl1 = [addi, beq], bbl2 = [addi, beq], bbl3 =
  // [addi, jmp].
  EXPECT_EQ(T->NumBbls, 3u);
  EXPECT_EQ(T->Steps.size(), 6u);
  EXPECT_EQ(T->Steps[0].BblIndex, 0u);
  EXPECT_EQ(T->Steps[2].BblIndex, 1u);
  EXPECT_EQ(T->Steps[4].BblIndex, 2u);
}

TEST(Compiler, MaxBblsLimitsTraces) {
  Program P = mustAssemble(R"(
main:
  beq r1, r2, main
  beq r1, r3, main
  beq r1, r4, main
  beq r1, r5, main
  jmp main
)",
                           "t");
  CostModel Model;
  CompilerLimits Limits;
  Limits.MaxBbls = 2;
  auto T = compileTrace(P, P.EntryPc, Model, nullptr, Limits);
  EXPECT_EQ(T->NumBbls, 2u);
  EXPECT_EQ(T->Steps.size(), 2u);
}

TEST(Compiler, BoundaryPcSplitsTraces) {
  Program P = mustAssemble(R"(
main:
  addi r1, r1, 1
  addi r1, r1, 2
  addi r1, r1, 3
  jmp main
)",
                           "t");
  CostModel Model;
  CompilerLimits Limits;
  Limits.BoundaryPc = P.EntryPc + 2 * InstSize;
  auto T = compileTrace(P, P.EntryPc, Model, nullptr, Limits);
  EXPECT_EQ(T->Steps.size(), 2u) << "trace must stop before the boundary";
  // A trace MAY start at the boundary.
  auto T2 = compileTrace(P, Limits.BoundaryPc, Model, nullptr, Limits);
  EXPECT_EQ(T2->StartPc, Limits.BoundaryPc);
  EXPECT_EQ(T2->Steps.size(), 2u);
}

TEST(Compiler, SyscallEndsTrace) {
  Program P = mustAssemble("main:\n  addi r1, r1, 1\n  syscall\n  nop\n",
                           "t");
  CostModel Model;
  auto T = compileTrace(P, P.EntryPc, Model, nullptr);
  EXPECT_EQ(T->Steps.size(), 2u);
  EXPECT_TRUE(T->Steps.back().Inst->isSyscall());
}

TEST(Compiler, CompileCostScalesWithLength) {
  Program P = makeCountdown(5);
  CostModel Model;
  auto T = compileTrace(P, P.EntryPc, Model, nullptr);
  EXPECT_EQ(T->CompileCost, Model.JitCompilePerInst * T->Steps.size());
}

// --- Instrumentation objects -------------------------------------------

TEST(InstrObjects, BblViewsPartitionTheTrace) {
  Program P = mustAssemble(R"(
main:
  addi r1, r1, 1
  beq r1, r2, main
  addi r1, r1, 2
  jmp main
)",
                           "t");
  CostModel Model;
  auto CT = compileTrace(P, P.EntryPc, Model, nullptr);
  Trace T(*CT);
  ASSERT_EQ(T.numBbls(), 2u);
  EXPECT_EQ(T.bblAt(0).numIns(), 2u);
  EXPECT_EQ(T.bblAt(1).numIns(), 2u);
  EXPECT_EQ(T.bblAt(0).insHead().address(), P.EntryPc);
  EXPECT_EQ(T.bblAt(1).insHead().address(), P.EntryPc + 2 * InstSize);
  EXPECT_EQ(T.bblAt(0).numIns() + T.bblAt(1).numIns(), T.numIns());
}

TEST(InstrObjects, InsPredicates) {
  Program P = mustAssemble(R"(
main:
  ld64 r1, [r2+8]
  st64 [r2+8], r1
  beq r1, r2, main
  call main
  ret
  syscall
)",
                           "t");
  CostModel Model;
  CompilerLimits Limits;
  Limits.MaxBbls = 10;
  auto CT = compileTrace(P, P.EntryPc, Model, nullptr, Limits);
  Trace T(*CT);
  EXPECT_TRUE(T.insAt(0).isMemoryRead());
  EXPECT_FALSE(T.insAt(0).isMemoryWrite());
  EXPECT_TRUE(T.insAt(1).isMemoryWrite());
  EXPECT_TRUE(T.insAt(2).isBranch());
  // The trace stops at the call (unconditional transfer).
  EXPECT_TRUE(T.insAt(T.numIns() - 1).isCall());
}

// --- PinVm execution ----------------------------------------------------

struct VmHarness {
  Program Prog;
  Process Proc;
  SpServices Services;
  CodeCache Cache;
  std::unique_ptr<LambdaTool> ToolPtr;
  std::unique_ptr<PinVm> Vm;

  VmHarness(Program P, LambdaTool::InstrumentFn Fn, PinVmConfig Config = {})
      : Prog(std::move(P)), Proc(Process::create(Prog)) {
    ToolPtr = std::make_unique<LambdaTool>(Services, std::move(Fn));
    Vm = std::make_unique<PinVm>(Proc, Model, ToolPtr.get(), Cache, Config);
  }

  /// Runs to process exit; returns retired count.
  uint64_t runToExit() {
    TickLedger Ledger;
    while (Proc.Status == ProcStatus::Running) {
      Ledger.beginStep(1'000'000'000);
      VmStop Stop = Vm->run(Ledger);
      if (Stop == VmStop::Syscall) {
        SystemContext Ctx;
        serviceSyscall(Proc, Ctx, nullptr);
        Vm->noteSyscallRetired();
        continue;
      }
      if (Stop != VmStop::Budget)
        ADD_FAILURE() << "unexpected stop " << int(Stop);
    }
    return Vm->retired();
  }

  CostModel Model;
};

TEST(PinVm, ExecutionMatchesInterpreter) {
  Program P = makeCountdown(200);
  DirectRunResult Native = runDirect(P);
  VmHarness H(makeCountdown(200), [](Trace &) {});
  uint64_t Retired = H.runToExit();
  EXPECT_EQ(Retired, Native.Insts);
  EXPECT_EQ(H.Proc.ExitCode, 0);
}

TEST(PinVm, AnalysisCallCountsAndArgs) {
  // Count instructions via instrumentation and capture EAs of stores.
  uint64_t Count = 0;
  std::vector<uint64_t> StoreEas;
  VmHarness H(makeCountdown(10), [&](Trace &T) {
    for (uint32_t I = 0; I != T.numIns(); ++I) {
      T.insAt(I).insertCall([&](const uint64_t *) { ++Count; }, {});
      if (T.insAt(I).isMemoryWrite())
        T.insAt(I).insertCall(
            [&](const uint64_t *A) { StoreEas.push_back(A[0]); },
            {Arg::memoryEa()});
    }
  });
  uint64_t Retired = H.runToExit();
  EXPECT_EQ(Count, Retired);
  // Ten iterations, one st64 each, same buffer address.
  ASSERT_EQ(StoreEas.size(), 10u);
  for (uint64_t Ea : StoreEas)
    EXPECT_EQ(Ea, AddressLayout::DataBase);
}

TEST(PinVm, BranchTakenArg) {
  // countdown's bne is taken N-1 times and falls through once.
  uint64_t Taken = 0, NotTaken = 0;
  VmHarness H(makeCountdown(10), [&](Trace &T) {
    for (uint32_t I = 0; I != T.numIns(); ++I)
      if (T.insAt(I).inst().isCondBranch())
        T.insAt(I).insertCall(
            [&](const uint64_t *A) { A[0] ? ++Taken : ++NotTaken; },
            {Arg::branchTaken()});
  });
  H.runToExit();
  EXPECT_EQ(Taken, 9u);
  EXPECT_EQ(NotTaken, 1u);
}

TEST(PinVm, IfThenCallSemantics) {
  // If-predicate gates the Then call; count both executions.
  uint64_t IfRuns = 0, ThenRuns = 0;
  VmHarness H(makeCountdown(10), [&](Trace &T) {
    for (uint32_t I = 0; I != T.numIns(); ++I) {
      if (!T.insAt(I).inst().isCondBranch())
        continue;
      T.insAt(I).insertIfCall(
          [&](const uint64_t *A) -> uint64_t {
            ++IfRuns;
            return A[0] & 1; // r1 odd
          },
          {Arg::regValue(1)});
      T.insAt(I).insertThenCall([&](const uint64_t *) { ++ThenRuns; }, {});
    }
  });
  H.runToExit();
  EXPECT_EQ(IfRuns, 10u);
  EXPECT_EQ(ThenRuns, 5u); // r1 = 9,8,...,0 at the branch: odd 5 times
  EXPECT_EQ(H.Vm->inlinedChecks(), 10u);
  EXPECT_EQ(H.Vm->analysisCalls(), 5u);
}

TEST(PinVm, SliceNumArg) {
  PinVmConfig Config;
  Config.SliceNum = 17;
  uint64_t Seen = ~0ull;
  VmHarness H(
      makeCountdown(1),
      [&](Trace &T) {
        T.insAt(0).insertCall([&](const uint64_t *A) { Seen = A[0]; },
                              {Arg::sliceNum()});
      },
      Config);
  H.runToExit();
  EXPECT_EQ(Seen, 17u);
}

TEST(PinVm, CodeCacheReusesTraces) {
  VmHarness H(makeCountdown(1000), [](Trace &) {});
  H.runToExit();
  // The loop body compiles once and is re-entered many times.
  EXPECT_LT(H.Vm->tracesCompiled(), 10u);
  EXPECT_GE(H.Vm->tracesEntered(), 1000u);
  EXPECT_EQ(H.Cache.misses(), H.Vm->tracesCompiled());
}

TEST(PinVm, ArmedDetectionFiresBeforeExecution) {
  Program P = makeCountdown(10);
  uint64_t LoopPc = P.symbol("loop");
  VmHarness H(std::move(P), [](Trace &) {});
  unsigned Hits = 0;
  H.Vm->armDetection(LoopPc, [&](TickLedger &) {
    ++Hits;
    return Hits == 3; // Stop on the third pass.
  });
  TickLedger Ledger;
  Ledger.beginStep(1'000'000'000);
  VmStop Stop = H.Vm->run(Ledger);
  EXPECT_EQ(Stop, VmStop::Detected);
  EXPECT_EQ(Hits, 3u);
  EXPECT_EQ(H.Proc.Cpu.Pc, LoopPc) << "detection stops before execution";
  // 3 setup + 2 full iterations of 4.
  EXPECT_EQ(H.Vm->retired(), 3 + 2 * 4u);
}

TEST(PinVm, RequestStopIsToolStop) {
  VmHarness H(makeCountdown(100000), [](Trace &) {});
  TickLedger Ledger;
  Ledger.beginStep(1'000'000'000);
  H.Vm->requestStop();
  EXPECT_EQ(H.Vm->run(Ledger), VmStop::ToolStop);
  EXPECT_EQ(H.Vm->retired(), 0u);
}

TEST(PinVm, BudgetStopsAndResumesExactly) {
  Program P = makeCountdown(100);
  DirectRunResult Native = runDirect(P);
  VmHarness H(makeCountdown(100), [](Trace &) {});
  TickLedger Ledger;
  uint64_t Rounds = 0;
  while (H.Proc.Status == ProcStatus::Running) {
    Ledger.beginStep(5000); // Tiny budget: many suspensions.
    VmStop Stop = H.Vm->run(Ledger);
    ++Rounds;
    if (Stop == VmStop::Syscall) {
      SystemContext Ctx;
      serviceSyscall(H.Proc, Ctx, nullptr);
      H.Vm->noteSyscallRetired();
    }
    ASSERT_LT(Rounds, 100000u);
  }
  EXPECT_GT(Rounds, 10u) << "budget should actually fragment execution";
  EXPECT_EQ(H.Vm->retired(), Native.Insts);
}

TEST(PinVm, SharedJitDiscountsAdoptedTraces) {
  CostModel Model;
  SharedJitRegistry Shared;
  PinVmConfig Config;
  Config.SharedJit = &Shared;

  Program P1 = makeCountdown(50);
  VmHarness A(std::move(P1), [](Trace &) {}, Config);
  A.runToExit();
  os::Ticks FirstCompile = A.Vm->compileTicks();

  Program P2 = makeCountdown(50);
  VmHarness B(std::move(P2), [](Trace &) {}, Config);
  B.runToExit();
  EXPECT_LT(B.Vm->compileTicks(), FirstCompile / 5)
      << "second VM must adopt, not recompile";
}

// --- Runner -------------------------------------------------------------

TEST(Runner, NativeVsSerialPinTiming) {
  Program P = makeCountdown(20000);
  CostModel Model;
  RunReport Native = runNative(P, Model, 100);
  RunReport Pin = runSerialPin(P, Model, 100, [](SpServices &S) {
    return std::make_unique<LambdaTool>(S, [](Trace &) {});
  });
  EXPECT_EQ(Native.Insts, Pin.Insts);
  EXPECT_GT(Pin.WallTicks, Native.WallTicks)
      << "even uninstrumented Pin pays dispatch overhead";
  EXPECT_LT(Pin.WallTicks, Native.WallTicks * 2);
}

TEST(Runner, InstCostScalesNativeTime) {
  Program P = makeCountdown(20000);
  CostModel Model;
  RunReport Fast = runNative(P, Model, 100);
  RunReport Slow = runNative(P, Model, 320); // CPI 3.2
  double Ratio = double(Slow.WallTicks) / double(Fast.WallTicks);
  EXPECT_NEAR(Ratio, 3.2, 0.2);
}

} // namespace
