//===- tests/superpin_test.cpp - SuperPin engine tests --------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// End-to-end properties of the SuperPin engine (DESIGN.md Section 6):
// count preservation, slice partitioning, syscall record/playback
// fidelity, determinism, signature behaviour including the Section 4.4
// false positive and its -spmemsig fix.
//
//===----------------------------------------------------------------------===//

#include "superpin/Engine.h"

#include "os/DirectRun.h"
#include "pin/Runner.h"
#include "tools/Icount.h"
#include "workloads/Spec2000.h"

#include "TestPrograms.h"

#include "gtest/gtest.h"

using namespace spin;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::sp;
using namespace spin::test;
using namespace spin::tools;
using namespace spin::vm;
using namespace spin::workloads;

namespace {

CostModel testModel() { return CostModel(); }

SpOptions testOptions() {
  SpOptions Opts;
  Opts.SliceMs = 50; // Small slices so tiny programs produce many.
  Opts.PhysCpus = 8;
  Opts.VirtCpus = 8;
  return Opts;
}

/// A small generated workload exercising calls, branches, memory, and
/// replayable + duplicable syscalls.
Program smallWorkload(uint64_t TargetInsts = 400'000,
                      workloads::SysMix Mix = workloads::SysMix::Mixed) {
  GenParams P;
  P.Name = "small";
  P.TargetInsts = TargetInsts;
  P.NumFuncs = 6;
  P.BlocksPerFunc = 6;
  P.AluPerBlock = 3;
  P.WorkingSetBytes = 1 << 14;
  P.SyscallMask = Mix == workloads::SysMix::None ? 0 : 63;
  P.Mix = Mix;
  return generateWorkload(P);
}

TEST(SuperPin, CountPreservationOnSmallWorkload) {
  Program Prog = smallWorkload();
  CostModel Model = testModel();
  DirectRunResult Native = runDirect(Prog);
  ASSERT_TRUE(Native.Exited);

  auto SerialResult = std::make_shared<IcountResult>();
  RunReport Serial =
      runSerialPin(Prog, Model, 100,
                   makeIcountTool(IcountGranularity::Instruction,
                                  SerialResult));
  EXPECT_EQ(SerialResult->Total, Native.Insts)
      << "serial Pin icount1 must equal the native instruction count";

  auto SpResult = std::make_shared<IcountResult>();
  SpRunReport Sp = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, SpResult),
      testOptions(), Model);
  EXPECT_EQ(Sp.ExitCode, 0);
  EXPECT_EQ(SpResult->Total, Native.Insts)
      << "SuperPin merged icount1 must equal the native instruction count";
  EXPECT_TRUE(Sp.PartitionOk);
  EXPECT_GT(Sp.NumSlices, 1u) << "test should actually slice";
}

TEST(SuperPin, Icount2AgreesWithIcount1) {
  Program Prog = smallWorkload();
  CostModel Model = testModel();
  auto R1 = std::make_shared<IcountResult>();
  auto R2 = std::make_shared<IcountResult>();
  runSuperPin(Prog, makeIcountTool(IcountGranularity::Instruction, R1),
              testOptions(), Model);
  runSuperPin(Prog, makeIcountTool(IcountGranularity::BasicBlock, R2),
              testOptions(), Model);
  EXPECT_EQ(R1->Total, R2->Total);
}

TEST(SuperPin, SlicePartitionIsExact) {
  Program Prog = smallWorkload();
  SpRunReport Rep =
      runSuperPin(Prog, makeIcountTool(IcountGranularity::BasicBlock),
                  testOptions(), testModel());
  ASSERT_GT(Rep.Slices.size(), 1u);
  uint64_t Cursor = 0;
  for (const SliceInfo &S : Rep.Slices) {
    EXPECT_EQ(S.StartIndex, Cursor) << "gap/overlap at slice " << S.Num;
    EXPECT_EQ(S.RetiredInsts, S.ExpectedInsts)
        << "slice " << S.Num << " did not reproduce its window";
    Cursor = S.StartIndex + S.ExpectedInsts;
  }
  EXPECT_EQ(Cursor, Rep.MasterInsts);
  EXPECT_TRUE(Rep.PartitionOk);
}

TEST(SuperPin, OutputIsMasterCanonical) {
  // Slices must not duplicate application output; the master's write()
  // stream is canonical and equals the native run's.
  Program Prog = smallWorkload();
  DirectRunResult Native = runDirect(Prog);
  SpRunReport Rep =
      runSuperPin(Prog, makeIcountTool(IcountGranularity::BasicBlock),
                  testOptions(), testModel());
  EXPECT_EQ(Rep.Output, Native.Output);
  EXPECT_FALSE(Rep.Output.empty()) << "workload should emit a checksum";
}

TEST(SuperPin, DeterministicReports) {
  Program Prog = smallWorkload();
  auto RunOnce = [&] {
    return runSuperPin(Prog, makeIcountTool(IcountGranularity::Instruction),
                       testOptions(), testModel());
  };
  SpRunReport A = RunOnce();
  SpRunReport B = RunOnce();
  EXPECT_EQ(A.WallTicks, B.WallTicks);
  EXPECT_EQ(A.NumSlices, B.NumSlices);
  EXPECT_EQ(A.SliceInsts, B.SliceInsts);
  EXPECT_EQ(A.Signature.QuickChecks, B.Signature.QuickChecks);
  EXPECT_EQ(A.FiniOutput, B.FiniOutput);
  ASSERT_EQ(A.Slices.size(), B.Slices.size());
  for (size_t I = 0; I != A.Slices.size(); ++I) {
    EXPECT_EQ(A.Slices[I].RetiredInsts, B.Slices[I].RetiredInsts);
    EXPECT_EQ(A.Slices[I].MergeTime, B.Slices[I].MergeTime);
  }
}

TEST(SuperPin, SyscallRecordPlaybackFidelity) {
  // A read-heavy workload: read() results feed the checksum, so any
  // playback infidelity would change slice-side control flow or counts.
  Program Prog = smallWorkload(300'000, workloads::SysMix::ReadWrite);
  DirectRunResult Native = runDirect(Prog);
  auto SpResult = std::make_shared<IcountResult>();
  SpRunReport Rep = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, SpResult),
      testOptions(), testModel());
  EXPECT_EQ(SpResult->Total, Native.Insts);
  EXPECT_EQ(Rep.Output, Native.Output);
  EXPECT_GT(Rep.PlaybackSyscalls, 0u) << "test should exercise playback";
  EXPECT_TRUE(Rep.PartitionOk);
}

TEST(SuperPin, SysrecsZeroForcesSliceAtEveryReplayableSyscall) {
  Program Prog = smallWorkload(200'000, workloads::SysMix::ReadWrite);
  SpOptions Opts = testOptions();
  Opts.MaxSysRecs = 0; // -spsysrecs 0: disable recording (paper §5)
  Opts.SliceMs = 1000; // Timeouts out of the way: slicing via syscalls.
  auto SpResult = std::make_shared<IcountResult>();
  SpRunReport Rep = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, SpResult),
      Opts, testModel());
  // Only the application's exit record plays back (it is always recorded
  // so the final slice can terminate); every other replayable syscall
  // forced a new slice.
  EXPECT_EQ(Rep.PlaybackSyscalls, 1u);
  EXPECT_GT(Rep.SyscallSlices, 2u);
  EXPECT_TRUE(Rep.PartitionOk);
  DirectRunResult Native = runDirect(Prog);
  EXPECT_EQ(SpResult->Total, Native.Insts);
}

TEST(SuperPin, ForceSliceSyscallsCreateBoundaries) {
  Program Prog = smallWorkload(200'000, workloads::SysMix::OpenClose);
  SpOptions Opts = testOptions();
  Opts.SliceMs = 1000;
  SpRunReport Rep =
      runSuperPin(Prog, makeIcountTool(IcountGranularity::Instruction),
                  Opts, testModel());
  EXPECT_GT(Rep.ForcedSliceSyscalls, 0u);
  EXPECT_GT(Rep.SyscallSlices, 0u);
  EXPECT_TRUE(Rep.PartitionOk);
}

TEST(SuperPin, MaxSlicesOneSerializes) {
  // -spslices 1: the master must stall; the run still completes correctly.
  Program Prog = smallWorkload(150'000);
  SpOptions Opts = testOptions();
  Opts.MaxSlices = 1;
  auto SpResult = std::make_shared<IcountResult>();
  SpRunReport Rep = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, SpResult),
      Opts, testModel());
  DirectRunResult Native = runDirect(Prog);
  EXPECT_EQ(SpResult->Total, Native.Insts);
  EXPECT_GT(Rep.SleepTicks, 0u) << "master should stall at -spslices 1";
}

TEST(SuperPin, TimeBucketsSumToWall) {
  Program Prog = smallWorkload();
  SpRunReport Rep =
      runSuperPin(Prog, makeIcountTool(IcountGranularity::Instruction),
                  testOptions(), testModel());
  EXPECT_EQ(Rep.NativeTicks + Rep.ForkOthersTicks + Rep.SleepTicks +
                Rep.PipelineTicks,
            Rep.WallTicks);
  EXPECT_GT(Rep.PipelineTicks, 0u);
}

TEST(SuperPin, SignatureDetectionStats) {
  Program Prog = smallWorkload(500'000, workloads::SysMix::None);
  SpRunReport Rep =
      runSuperPin(Prog, makeIcountTool(IcountGranularity::BasicBlock),
                  testOptions(), testModel());
  ASSERT_GT(Rep.TimeoutSlices, 1u);
  // Every timeout slice that ended by signature matched exactly once.
  EXPECT_EQ(Rep.Signature.Matches + /*final slice*/ 0,
            static_cast<uint64_t>(
                std::count_if(Rep.Slices.begin(), Rep.Slices.end(),
                              [](const SliceInfo &S) {
                                return S.EndKind == SliceEndKind::Signature;
                              })));
  // The paper's headline stat: the quick check rarely escalates.
  EXPECT_GT(Rep.Signature.QuickChecks, Rep.Signature.FullChecks);
}

TEST(SuperPin, MemCounterLoopFalsePositiveAndMemsigFix) {
  // Section 4.4's documented false positive: registers and stack repeat
  // every iteration; only memory changes.
  Program Prog = makeMemCounterLoop(60'000);
  DirectRunResult Native = runDirect(Prog);
  ASSERT_TRUE(Native.Exited);

  bool SawFalsePositive = false;
  for (uint64_t SliceMs : {7, 11, 13, 17, 23}) {
    SpOptions Opts = testOptions();
    Opts.SliceMs = SliceMs;
    auto R = std::make_shared<IcountResult>();
    SpRunReport Rep = runSuperPin(
        Prog, makeIcountTool(IcountGranularity::Instruction, R), Opts,
        testModel());
    if (R->Total != Native.Insts || !Rep.PartitionOk)
      SawFalsePositive = true;
  }
  EXPECT_TRUE(SawFalsePositive)
      << "the Section 4.4 false positive should reproduce without -spmemsig";

  // The proposed memory-signature extension repairs it.
  for (uint64_t SliceMs : {7, 11, 13, 17, 23}) {
    SpOptions Opts = testOptions();
    Opts.SliceMs = SliceMs;
    Opts.MemSignature = true;
    auto R = std::make_shared<IcountResult>();
    SpRunReport Rep = runSuperPin(
        Prog, makeIcountTool(IcountGranularity::Instruction, R), Opts,
        testModel());
    EXPECT_EQ(R->Total, Native.Insts) << "-spmemsig failed at " << SliceMs;
    EXPECT_TRUE(Rep.PartitionOk);
    EXPECT_GT(Rep.Signature.MemChecks, 0u);
  }
}

TEST(SuperPin, QuickCheckAblationGivesSameResults) {
  Program Prog = smallWorkload();
  DirectRunResult Native = runDirect(Prog);
  SpOptions Opts = testOptions();
  Opts.QuickCheck = false;
  auto R = std::make_shared<IcountResult>();
  SpRunReport Rep = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, R), Opts,
      testModel());
  EXPECT_EQ(R->Total, Native.Insts);
  EXPECT_EQ(Rep.Signature.QuickChecks, 0u);
  EXPECT_GT(Rep.Signature.FullChecks, 0u);
}

TEST(SuperPin, SharedCodeCacheModeIsCorrectAndCheaper) {
  Program Prog = smallWorkload(500'000, workloads::SysMix::None);
  DirectRunResult Native = runDirect(Prog);
  SpOptions Opts = testOptions();
  auto R1 = std::make_shared<IcountResult>();
  SpRunReport Private = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, R1), Opts,
      testModel());
  Opts.SharedCodeCache = true;
  auto R2 = std::make_shared<IcountResult>();
  SpRunReport Shared = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, R2), Opts,
      testModel());
  EXPECT_EQ(R1->Total, Native.Insts);
  EXPECT_EQ(R2->Total, Native.Insts);
  EXPECT_LT(Shared.CompileTicks, Private.CompileTicks)
      << "sharing the code cache should reduce total compile time";
}

TEST(SuperPin, AdaptiveSlicesShrinkPipeline) {
  Program Prog = smallWorkload(600'000, workloads::SysMix::None);
  SpOptions Opts = testOptions();
  Opts.SliceMs = 200;
  SpRunReport Fixed =
      runSuperPin(Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts,
                  testModel());
  Opts.AdaptiveSlices = true;
  Opts.AppDurationHintMs = Fixed.MasterExitTicks / testModel().TicksPerMs;
  Opts.MinSliceMs = 10;
  SpRunReport Adaptive =
      runSuperPin(Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts,
                  testModel());
  EXPECT_LT(Adaptive.PipelineTicks, Fixed.PipelineTicks)
      << "adaptive timeslices should shrink the pipeline drain";
}

TEST(SuperPin, SuiteWorkloadSmoke) {
  // A few representative suite members at tiny scale: counts preserved.
  for (const char *Name : {"gcc", "mcf", "crafty", "gzip", "vortex"}) {
    const WorkloadInfo &Info = findWorkload(Name);
    Program Prog = buildWorkload(Info, 0.02);
    DirectRunResult Native = runDirect(Prog);
    ASSERT_TRUE(Native.Exited) << Name;
    SpOptions Opts = testOptions();
    Opts.Cpi = Info.Cpi;
    auto R = std::make_shared<IcountResult>();
    SpRunReport Rep = runSuperPin(
        Prog, makeIcountTool(IcountGranularity::Instruction, R), Opts,
        testModel());
    EXPECT_EQ(R->Total, Native.Insts) << Name;
    EXPECT_TRUE(Rep.PartitionOk) << Name;
    EXPECT_EQ(Rep.Output, Native.Output) << Name;
  }
}

} // namespace

// --- Cost-model robustness (appended suite) --------------------------------

namespace {

/// Tool results must be invariant under ANY cost model: costs shape
/// virtual time, never semantics. Exercises the ledger/debt machinery
/// with extreme constants.
class CostModelSweep : public ::testing::TestWithParam<int> {};

TEST_P(CostModelSweep, CostsNeverChangeResults) {
  CostModel Model;
  switch (GetParam()) {
  case 0: // free engine: everything except instructions costs nothing
    Model.JitCompilePerInst = 0;
    Model.AnalysisCallBase = 0;
    Model.AnalysisCallPerArg = 0;
    Model.ForkBaseCost = 0;
    Model.CowCopyPageCost = 0;
    Model.SyscallCost = 0;
    Model.PtraceStopCost = 0;
    Model.SigRecordCost = 0;
    Model.MergeBaseCost = 0;
    break;
  case 1: // brutally expensive engine: multi-quantum debts everywhere
    Model.JitCompilePerInst = 200'000;
    Model.AnalysisCallBase = 50'000;
    Model.ForkBaseCost = 50'000'000;
    Model.CowCopyPageCost = 500'000;
    Model.SigRecordCost = 5'000'000;
    Model.MergeBaseCost = 2'000'000;
    break;
  case 2: // heavy contention and weak SMT
    Model.SmpTaxPerCpu = 0.2;
    Model.SmtThroughput = 1.0;
    break;
  case 3: // coarse clock (bigger quanta)
    Model.TicksPerMs = 1'000'000;
    break;
  }
  Program Prog = smallWorkload(120'000);
  DirectRunResult Native = runDirect(Prog);
  SpOptions Opts = testOptions();
  auto Count = std::make_shared<IcountResult>();
  SpRunReport Rep = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, Count), Opts,
      Model);
  EXPECT_EQ(Count->Total, Native.Insts);
  EXPECT_TRUE(Rep.PartitionOk);
  EXPECT_EQ(Rep.Output, Native.Output);
  EXPECT_EQ(Rep.NativeTicks + Rep.ForkOthersTicks + Rep.SleepTicks +
                Rep.PipelineTicks,
            Rep.WallTicks);
}

INSTANTIATE_TEST_SUITE_P(Extremes, CostModelSweep,
                         ::testing::Range(0, 4));

TEST(SuperPin, MemoryBubblePreservesAppMappings) {
  // §4.1: the master pre-allocates a bubble of anonymous memory that each
  // slice releases at spawn, so VM-side allocations never perturb the
  // application's address space. Verify the mechanism end to end: the
  // run stays exact, and the master actually materialized bubble pages.
  Program Prog = smallWorkload(100'000, workloads::SysMix::BrkHeavy);
  DirectRunResult Native = runDirect(Prog);
  auto Count = std::make_shared<IcountResult>();
  SpRunReport Rep = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, Count),
      testOptions(), testModel());
  EXPECT_EQ(Count->Total, Native.Insts);
  EXPECT_TRUE(Rep.PartitionOk);
  // Every slice fork copies the bubble's page-table entries; COW activity
  // proves the fork/page machinery ran (brk-heavy master touches pages).
  EXPECT_GT(Rep.MasterCowCopies, 0u);
}

} // namespace

// --- Shared areas (appended suite) ------------------------------------------

#include "superpin/SharedAreas.h"

namespace {

TEST(SharedAreas, ManualModeReturnsCanonicalBuffer) {
  SharedAreaRegistry Registry;
  SliceServices S0(Registry, 0), S1(Registry, 1);
  uint64_t Init = 42;
  void *P0 = S0.createSharedArea(&Init, sizeof(Init), pin::AutoMerge::None);
  void *P1 = S1.createSharedArea(&Init, sizeof(Init), pin::AutoMerge::None);
  EXPECT_EQ(P0, P1) << "manual areas are truly shared";
  EXPECT_EQ(*static_cast<uint64_t *>(P0), 42u)
      << "initialized from the first creator's local data";
  *static_cast<uint64_t *>(P0) = 7;
  EXPECT_EQ(*static_cast<uint64_t *>(P1), 7u);
}

TEST(SharedAreas, AutoMergeModesFold) {
  SharedAreaRegistry Registry;
  SliceServices S0(Registry, 0), S1(Registry, 1);
  uint64_t Init[3] = {0, 0, 0};
  // A min-merging tool initializes its locals to the identity, exactly as
  // a serial min-tool would (the canonical buffer copies the first
  // creator's local data).
  uint64_t MinInit[3] = {~0ull, ~0ull, ~0ull};
  // Area 0: Add64; area 1: Max64; area 2: Min64.
  auto *Add0 = static_cast<uint64_t *>(
      S0.createSharedArea(Init, sizeof(Init), pin::AutoMerge::Add64));
  auto *Max0 = static_cast<uint64_t *>(
      S0.createSharedArea(Init, sizeof(Init), pin::AutoMerge::Max64));
  auto *Min0 = static_cast<uint64_t *>(
      S0.createSharedArea(MinInit, sizeof(MinInit), pin::AutoMerge::Min64));
  auto *Add1 = static_cast<uint64_t *>(
      S1.createSharedArea(Init, sizeof(Init), pin::AutoMerge::Add64));
  auto *Max1 = static_cast<uint64_t *>(
      S1.createSharedArea(Init, sizeof(Init), pin::AutoMerge::Max64));
  auto *Min1 = static_cast<uint64_t *>(
      S1.createSharedArea(MinInit, sizeof(MinInit), pin::AutoMerge::Min64));
  EXPECT_NE(Add0, Add1) << "auto-merge areas hand out private shadows";

  Add0[0] = 10;
  Max0[1] = 5;
  Min0[2] = 9;
  Add1[0] = 32;
  Max1[1] = 3;
  Min1[2] = 4;
  S0.mergeShadows();
  S1.mergeShadows();

  // Read the canonical results through a fini-mode service.
  SliceServices Fini(Registry, 2, /*FiniMode=*/true);
  auto *AddC = static_cast<uint64_t *>(
      Fini.createSharedArea(Init, sizeof(Init), pin::AutoMerge::Add64));
  auto *MaxC = static_cast<uint64_t *>(
      Fini.createSharedArea(Init, sizeof(Init), pin::AutoMerge::Max64));
  auto *MinC = static_cast<uint64_t *>(
      Fini.createSharedArea(MinInit, sizeof(MinInit), pin::AutoMerge::Min64));
  EXPECT_EQ(AddC[0], 42u);
  EXPECT_EQ(MaxC[1], 5u);
  EXPECT_EQ(MinC[2], 4u);
  // Untouched Min lanes stay at the identity (shadows fold away).
  EXPECT_EQ(MinC[0], ~0ull);
}

TEST(SharedAreasDeath, ShapeMismatchIsFatal) {
  SharedAreaRegistry Registry;
  SliceServices S0(Registry, 0), S1(Registry, 1);
  uint64_t A = 0;
  uint32_t B = 0;
  S0.createSharedArea(&A, sizeof(A), pin::AutoMerge::None);
  EXPECT_DEATH(S1.createSharedArea(&B, sizeof(B), pin::AutoMerge::None),
               "shape mismatch");
}

} // namespace
