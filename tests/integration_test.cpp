//===- tests/integration_test.cpp - Cross-module property sweeps ----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Parameterized sweeps of the system-level invariants (DESIGN.md §6)
// across workloads × tools × SuperPin configurations, plus engine edge
// cases that the unit suites do not reach.
//
//===----------------------------------------------------------------------===//

#include "superpin/Engine.h"
#include "superpin/Reporting.h"

#include "os/DirectRun.h"
#include "pin/Runner.h"
#include "support/RawOstream.h"
#include "support/Statistic.h"
#include "tools/DCache.h"
#include "tools/Icount.h"
#include "workloads/Spec2000.h"

#include "TestPrograms.h"

#include "gtest/gtest.h"

using namespace spin;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::test;
using namespace spin::tools;
using namespace spin::vm;
using namespace spin::workloads;

namespace {

// --- Count preservation sweep -------------------------------------------
// workload x granularity x timeslice: merged SuperPin counts must equal
// the native instruction count, the partition must be exact, and the
// master's output must be canonical.

using CountSweepParam =
    std::tuple<const char * /*workload*/, int /*granularity*/,
               int /*sliceMs*/>;

class CountPreservationSweep
    : public ::testing::TestWithParam<CountSweepParam> {};

TEST_P(CountPreservationSweep, SuperPinPreservesCounts) {
  const auto &[Name, Granularity, SliceMs] = GetParam();
  const WorkloadInfo &Info = findWorkload(Name);
  Program Prog = buildWorkload(Info, 0.015);
  DirectRunResult Native = runDirect(Prog);
  ASSERT_TRUE(Native.Exited);

  sp::SpOptions Opts;
  Opts.SliceMs = static_cast<uint64_t>(SliceMs);
  Opts.Cpi = Info.Cpi;
  auto Count = std::make_shared<IcountResult>();
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog,
      makeIcountTool(static_cast<IcountGranularity>(Granularity), Count),
      Opts, CostModel());

  EXPECT_EQ(Count->Total, Native.Insts);
  EXPECT_TRUE(Rep.PartitionOk);
  EXPECT_EQ(Rep.Output, Native.Output);
  EXPECT_EQ(Rep.ExitCode, 0);
  EXPECT_EQ(Rep.MasterInsts, Native.Insts);
  EXPECT_EQ(Rep.SliceInsts, Native.Insts);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CountPreservationSweep,
    ::testing::Combine(
        ::testing::Values("gcc", "mcf", "gzip", "vortex", "eon", "swim"),
        ::testing::Values(int(IcountGranularity::Instruction),
                          int(IcountGranularity::BasicBlock)),
        ::testing::Values(15, 40, 110)),
    [](const ::testing::TestParamInfo<CountSweepParam> &I) {
      return std::string(std::get<0>(I.param)) +
             (std::get<1>(I.param) ? "_bbl" : "_ins") + "_" +
             std::to_string(std::get<2>(I.param)) + "ms";
    });

// --- Configuration sweep --------------------------------------------------
// Orthogonal engine options must never affect tool results.

struct ConfigCase {
  const char *Label;
  void (*Apply)(sp::SpOptions &);
};

class ConfigSweep : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(ConfigSweep, OptionsNeverChangeResults) {
  const WorkloadInfo &Info = findWorkload("gzip");
  Program Prog = buildWorkload(Info, 0.02);
  DirectRunResult Native = runDirect(Prog);

  sp::SpOptions Opts;
  Opts.SliceMs = 30;
  Opts.Cpi = Info.Cpi;
  GetParam().Apply(Opts);
  auto Count = std::make_shared<IcountResult>();
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, Count), Opts,
      CostModel());
  EXPECT_EQ(Count->Total, Native.Insts) << GetParam().Label;
  EXPECT_TRUE(Rep.PartitionOk) << GetParam().Label;
  EXPECT_EQ(Rep.Output, Native.Output) << GetParam().Label;
}

INSTANTIATE_TEST_SUITE_P(
    Options, ConfigSweep,
    ::testing::Values(
        ConfigCase{"memsig", [](sp::SpOptions &O) { O.MemSignature = true; }},
        ConfigCase{"noquick", [](sp::SpOptions &O) { O.QuickCheck = false; }},
        ConfigCase{"sharedcc",
                   [](sp::SpOptions &O) { O.SharedCodeCache = true; }},
        ConfigCase{"sysrecs0", [](sp::SpOptions &O) { O.MaxSysRecs = 0; }},
        ConfigCase{"sysrecs2", [](sp::SpOptions &O) { O.MaxSysRecs = 2; }},
        ConfigCase{"mp1", [](sp::SpOptions &O) { O.MaxSlices = 1; }},
        ConfigCase{"mp2", [](sp::SpOptions &O) { O.MaxSlices = 2; }},
        ConfigCase{"cpus2",
                   [](sp::SpOptions &O) {
                     O.PhysCpus = 2;
                     O.VirtCpus = 2;
                   }},
        ConfigCase{"smt",
                   [](sp::SpOptions &O) {
                     O.PhysCpus = 4;
                     O.VirtCpus = 8;
                   }},
        ConfigCase{"adaptive",
                   [](sp::SpOptions &O) {
                     O.AdaptiveSlices = true;
                     O.AppDurationHintMs = 150;
                     O.MinSliceMs = 5;
                   }}),
    [](const ::testing::TestParamInfo<ConfigCase> &I) {
      return std::string(I.param.Label);
    });

// --- Dcache exactness sweep ------------------------------------------------

using DCacheParam = std::tuple<const char *, int /*numSets*/>;

class DCacheSweep : public ::testing::TestWithParam<DCacheParam> {};

TEST_P(DCacheSweep, DirectMappedExact) {
  const auto &[Name, NumSets] = GetParam();
  const WorkloadInfo &Info = findWorkload(Name);
  Program Prog = buildWorkload(Info, 0.015);
  CostModel Model;
  DCacheConfig Config;
  Config.NumSets = static_cast<uint32_t>(NumSets);

  auto Serial = std::make_shared<DCacheResult>();
  runSerialPin(Prog, Model, 100, makeDCacheTool(Config, Serial));
  sp::SpOptions Opts;
  Opts.SliceMs = 25;
  Opts.Cpi = Info.Cpi;
  auto Sp = std::make_shared<DCacheResult>();
  sp::runSuperPin(Prog, makeDCacheTool(Config, Sp), Opts, Model);

  EXPECT_EQ(Serial->Accesses, Sp->Accesses);
  EXPECT_EQ(Serial->Hits, Sp->Hits);
  EXPECT_EQ(Serial->Misses, Sp->Misses);
}

INSTANTIATE_TEST_SUITE_P(
    Caches, DCacheSweep,
    ::testing::Combine(::testing::Values("mcf", "gzip", "twolf"),
                       ::testing::Values(32, 512, 8192)),
    [](const ::testing::TestParamInfo<DCacheParam> &I) {
      return std::string(std::get<0>(I.param)) + "_" +
             std::to_string(std::get<1>(I.param)) + "sets";
    });

// --- Determinism sweep ------------------------------------------------------

class DeterminismSweep : public ::testing::TestWithParam<const char *> {};

TEST_P(DeterminismSweep, BitIdenticalReports) {
  const WorkloadInfo &Info = findWorkload(GetParam());
  Program Prog = buildWorkload(Info, 0.015);
  sp::SpOptions Opts;
  Opts.SliceMs = 35;
  Opts.Cpi = Info.Cpi;
  auto Run = [&] {
    return sp::runSuperPin(
        Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts,
        CostModel());
  };
  sp::SpRunReport A = Run();
  sp::SpRunReport B = Run();
  EXPECT_EQ(A.WallTicks, B.WallTicks);
  EXPECT_EQ(A.MasterExitTicks, B.MasterExitTicks);
  EXPECT_EQ(A.NativeTicks, B.NativeTicks);
  EXPECT_EQ(A.ForkOthersTicks, B.ForkOthersTicks);
  EXPECT_EQ(A.SleepTicks, B.SleepTicks);
  EXPECT_EQ(A.NumSlices, B.NumSlices);
  EXPECT_EQ(A.Signature.QuickChecks, B.Signature.QuickChecks);
  EXPECT_EQ(A.MasterCowCopies, B.MasterCowCopies);
  ASSERT_EQ(A.Slices.size(), B.Slices.size());
  for (size_t I = 0; I != A.Slices.size(); ++I) {
    EXPECT_EQ(A.Slices[I].SpawnTime, B.Slices[I].SpawnTime);
    EXPECT_EQ(A.Slices[I].ReadyTime, B.Slices[I].ReadyTime);
    EXPECT_EQ(A.Slices[I].EndTime, B.Slices[I].EndTime);
    EXPECT_EQ(A.Slices[I].MergeTime, B.Slices[I].MergeTime);
    EXPECT_EQ(A.Slices[I].RetiredInsts, B.Slices[I].RetiredInsts);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, DeterminismSweep,
                         ::testing::Values("gcc", "mcf", "eon", "bzip2"));

// --- Engine edge cases --------------------------------------------------

sp::SpOptions edgeOptions() {
  sp::SpOptions Opts;
  Opts.SliceMs = 50;
  return Opts;
}

TEST(EngineEdge, ImmediateExitProgram) {
  // The whole program is one window ending at app exit.
  Program Prog = mustAssemble("main:\n  movi r0, 0\n  movi r1, 5\n"
                              "  syscall\n",
                              "instant");
  auto Count = std::make_shared<IcountResult>();
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, Count),
      edgeOptions(), CostModel());
  EXPECT_EQ(Rep.ExitCode, 5);
  EXPECT_EQ(Rep.NumSlices, 1u);
  EXPECT_EQ(Count->Total, 3u);
  EXPECT_TRUE(Rep.PartitionOk);
  ASSERT_EQ(Rep.Slices.size(), 1u);
  EXPECT_EQ(Rep.Slices[0].EndKind, sp::SliceEndKind::AppExit);
}

TEST(EngineEdge, HugeTimesliceMakesOneSlice) {
  Program Prog = makeCountdown(5000);
  sp::SpOptions Opts = edgeOptions();
  Opts.SliceMs = 1'000'000;
  auto Count = std::make_shared<IcountResult>();
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, Count), Opts,
      CostModel());
  EXPECT_EQ(Rep.NumSlices, 1u);
  EXPECT_EQ(Rep.TimeoutSlices, 0u);
  EXPECT_EQ(Count->Total, 3 + 4 * 5000 + 3u);
}

TEST(EngineEdge, TinyTimesliceManySlices) {
  Program Prog = makeCountdown(200'000);
  sp::SpOptions Opts = edgeOptions();
  Opts.SliceMs = 5;
  auto Count = std::make_shared<IcountResult>();
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, Count), Opts,
      CostModel());
  EXPECT_GT(Rep.NumSlices, 50u);
  EXPECT_EQ(Count->Total, 3 + 4 * 200'000 + 3u);
  EXPECT_TRUE(Rep.PartitionOk);
}

TEST(EngineEdge, SingleCpuStillCorrect) {
  Program Prog = makeCountdown(50'000);
  sp::SpOptions Opts = edgeOptions();
  Opts.PhysCpus = 1;
  Opts.VirtCpus = 1;
  Opts.SliceMs = 20;
  auto Count = std::make_shared<IcountResult>();
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, Count), Opts,
      CostModel());
  EXPECT_EQ(Count->Total, 3 + 4 * 50'000 + 3u);
  EXPECT_TRUE(Rep.PartitionOk);
  // With one CPU, SuperPin degenerates to slower-than-serial execution;
  // it must still terminate and merge correctly.
  EXPECT_GT(Rep.WallTicks, 0u);
}

TEST(EngineEdge, CpiScalesNativeBucket) {
  Program Prog = makeCountdown(50'000);
  sp::SpOptions Opts = edgeOptions();
  Opts.Cpi = 1.0;
  sp::SpRunReport Fast = sp::runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts,
      CostModel());
  Opts.Cpi = 2.5;
  sp::SpRunReport Slow = sp::runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts,
      CostModel());
  double Ratio = double(Slow.NativeTicks) / double(Fast.NativeTicks);
  EXPECT_NEAR(Ratio, 2.5, 0.1);
}

TEST(EngineEdge, SliceTimesAreOrdered) {
  Program Prog = buildWorkload(findWorkload("apsi"), 0.02);
  sp::SpOptions Opts = edgeOptions();
  Opts.SliceMs = 20;
  Opts.Cpi = findWorkload("apsi").Cpi;
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts,
      CostModel());
  ASSERT_GT(Rep.Slices.size(), 2u);
  Ticks PrevMerge = 0;
  for (const sp::SliceInfo &S : Rep.Slices) {
    EXPECT_LE(S.SpawnTime, S.ReadyTime);
    EXPECT_LE(S.ReadyTime, S.EndTime);
    EXPECT_LE(S.EndTime, S.MergeTime);
    EXPECT_GE(S.MergeTime, PrevMerge) << "merges must be in slice order";
    PrevMerge = S.MergeTime;
  }
  EXPECT_LE(Rep.MasterExitTicks, Rep.Slices.back().MergeTime);
}

// --- Reporting ------------------------------------------------------------

TEST(Reporting, ReportAndTimelineRender) {
  Program Prog = buildWorkload(findWorkload("gzip"), 0.02);
  sp::SpOptions Opts = edgeOptions();
  Opts.SliceMs = 25;
  Opts.Cpi = findWorkload("gzip").Cpi;
  CostModel Model;
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);

  std::string Text;
  RawStringOstream OS(Text);
  sp::printReport(Rep, Model, OS);
  EXPECT_NE(Text.find("SuperPin run report"), std::string::npos);
  EXPECT_NE(Text.find("pipeline drain"), std::string::npos);
  EXPECT_NE(Text.find("partition exact"), std::string::npos);

  std::string Chart;
  RawStringOstream ChartOS(Chart);
  sp::printTimeline(Rep, Model, ChartOS, 60, 8);
  EXPECT_NE(Chart.find("master"), std::string::npos);
  EXPECT_NE(Chart.find("S1"), std::string::npos);
  EXPECT_NE(Chart.find('#'), std::string::npos);
  EXPECT_NE(Chart.find('|'), std::string::npos);
}

TEST(Reporting, StatisticsExportIsComplete) {
  Program Prog = buildWorkload(findWorkload("gzip"), 0.015);
  sp::SpOptions Opts = edgeOptions();
  Opts.Cpi = findWorkload("gzip").Cpi;
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts,
      CostModel());
  StatisticRegistry Stats;
  sp::exportStatistics(Rep, Stats);
  EXPECT_EQ(Stats.get("superpin.wall.ticks"), Rep.WallTicks);
  EXPECT_EQ(Stats.get("superpin.slices.total"), Rep.NumSlices);
  EXPECT_EQ(Stats.get("superpin.sig.matches"), Rep.Signature.Matches);
  EXPECT_GE(Stats.entries().size(), 20u);
}

} // namespace
