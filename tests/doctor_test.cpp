//===- tests/doctor_test.cpp - Critical-path diagnosis tests --------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The -spdoctor diagnosis layer: the binding-predecessor critical-path
// walk (obs/CriticalPath.h) over golden synthetic graphs with known
// answers, the live/replay diagnoses (obs/Doctor.h) whose attribution
// must sum to the wall time exactly, the spdoctor-v1 JSON document, the
// attachment-gated trace-drop counters, and the postmortem flight
// recorder (obs/FlightRecorder.h) — clean runs write nothing, triggered
// runs dump a parseable bundle.
//
//===----------------------------------------------------------------------===//

#include "obs/CriticalPath.h"
#include "obs/Doctor.h"
#include "obs/FlightRecorder.h"
#include "obs/TraceRecorder.h"

#include "superpin/Engine.h"
#include "superpin/Reporting.h"
#include "support/Json.h"
#include "support/RawOstream.h"
#include "support/Statistic.h"
#include "tools/Icount.h"
#include "workloads/Generator.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>

using namespace spin;
using namespace spin::obs;
using namespace spin::os;

namespace {

os::Ticks kindTicksSum(const std::array<os::Ticks, NumCpKinds> &K) {
  os::Ticks Sum = 0;
  for (os::Ticks T : K)
    Sum += T;
  return Sum;
}

// --- Critical-path walk: golden graphs -----------------------------------

TEST(CriticalPath, LinearChainPartitionsExactly) {
  CpGraph G;
  uint32_t Start = G.addNode("start", 0);
  uint32_t A = G.addNode("a", 10);
  uint32_t B = G.addNode("b", 30);
  uint32_t Sink = G.addNode("sink", 100);
  G.addEdge(Start, A, CpKind::MasterRun);
  G.addEdge(A, B, CpKind::Fork);
  G.addEdge(B, Sink, CpKind::SliceBody);

  CpResult R = analyzeCriticalPath(G, Start, Sink);
  ASSERT_TRUE(R.Valid) << R.Error;
  EXPECT_EQ(R.TotalTicks, 100u);
  ASSERT_EQ(R.Path.size(), 3u);
  // Source-to-sink order, contiguous segments covering [0, 100].
  EXPECT_EQ(R.Path[0].Begin, 0u);
  EXPECT_EQ(R.Path[0].End, 10u);
  EXPECT_EQ(R.Path[1].Begin, 10u);
  EXPECT_EQ(R.Path[1].End, 30u);
  EXPECT_EQ(R.Path[2].Begin, 30u);
  EXPECT_EQ(R.Path[2].End, 100u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::MasterRun)], 10u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::Fork)], 20u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::SliceBody)], 70u);
  EXPECT_EQ(kindTicksSum(R.KindTicks), R.TotalTicks);
  for (os::Ticks S : R.Slack)
    EXPECT_EQ(S, 0u); // a chain has no slack anywhere
}

TEST(CriticalPath, BindingPredecessorWinsAndSlackIsMeasured) {
  // Diamond: the sink's two predecessors finished at 40 (a) and 70 (b);
  // b bound the sink, so the path runs through b and a's edge carries
  // 30 ticks of slack.
  CpGraph G;
  uint32_t Start = G.addNode("start", 0);
  uint32_t A = G.addNode("a", 40);
  uint32_t B = G.addNode("b", 70);
  uint32_t Sink = G.addNode("sink", 80);
  G.addEdge(Start, A, CpKind::MasterRun); // edge 0
  G.addEdge(Start, B, CpKind::Fork);      // edge 1
  G.addEdge(A, Sink, CpKind::Merge);      // edge 2: slack 30
  G.addEdge(B, Sink, CpKind::SliceBody);  // edge 3: binding

  CpResult R = analyzeCriticalPath(G, Start, Sink);
  ASSERT_TRUE(R.Valid) << R.Error;
  ASSERT_EQ(R.Path.size(), 2u);
  EXPECT_EQ(R.Path[0].Edge, 1u);
  EXPECT_EQ(R.Path[1].Edge, 3u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::Fork)], 70u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::SliceBody)], 10u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::Merge)], 0u);
  EXPECT_EQ(kindTicksSum(R.KindTicks), 80u);
  ASSERT_EQ(R.Slack.size(), 4u);
  EXPECT_EQ(R.Slack[2], 30u);
  EXPECT_EQ(R.Slack[3], 0u);
}

TEST(CriticalPath, TiesBreakTowardLowestEdgeIndex) {
  // Both predecessors of the sink completed at 50: the walk must pick the
  // lower edge index deterministically.
  CpGraph G;
  uint32_t Start = G.addNode("start", 0);
  uint32_t A = G.addNode("a", 50);
  uint32_t B = G.addNode("b", 50);
  uint32_t Sink = G.addNode("sink", 60);
  G.addEdge(Start, A, CpKind::MasterRun);
  G.addEdge(Start, B, CpKind::Fork);
  G.addEdge(A, Sink, CpKind::Merge);     // edge 2: wins the tie
  G.addEdge(B, Sink, CpKind::SliceBody); // edge 3
  CpResult R = analyzeCriticalPath(G, Start, Sink);
  ASSERT_TRUE(R.Valid) << R.Error;
  ASSERT_EQ(R.Path.size(), 2u);
  EXPECT_EQ(R.Path[1].Edge, 2u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::MasterRun)], 50u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::Merge)], 10u);
}

TEST(CriticalPath, CycleIsRejected) {
  CpGraph G;
  uint32_t Start = G.addNode("start", 0);
  uint32_t X = G.addNode("x", 10);
  uint32_t Y = G.addNode("y", 10);
  uint32_t Sink = G.addNode("sink", 20);
  G.addEdge(Start, X, CpKind::MasterRun);
  G.addEdge(X, Y, CpKind::MasterRun);
  G.addEdge(Y, X, CpKind::MasterRun);
  G.addEdge(X, Sink, CpKind::Drain);
  CpResult R = analyzeCriticalPath(G, Start, Sink);
  EXPECT_FALSE(R.Valid);
  EXPECT_NE(R.Error.find("cycle"), std::string::npos) << R.Error;
}

TEST(CriticalPath, BackwardEdgeIsRejected) {
  CpGraph G;
  uint32_t Start = G.addNode("start", 0);
  uint32_t A = G.addNode("a", 50);
  uint32_t Sink = G.addNode("sink", 40);
  G.addEdge(Start, A, CpKind::MasterRun);
  G.addEdge(A, Sink, CpKind::Drain);
  CpResult R = analyzeCriticalPath(G, Start, Sink);
  EXPECT_FALSE(R.Valid);
  EXPECT_NE(R.Error.find("backward"), std::string::npos) << R.Error;
}

TEST(CriticalPath, OutOfRangeIndicesAreRejected) {
  CpGraph G;
  uint32_t Start = G.addNode("start", 0);
  uint32_t Sink = G.addNode("sink", 10);
  G.addEdge(Start, 99, CpKind::MasterRun);
  EXPECT_FALSE(analyzeCriticalPath(G, Start, Sink).Valid);

  CpGraph G2;
  G2.addNode("only", 0);
  EXPECT_FALSE(analyzeCriticalPath(G2, 0, 7).Valid);
}

TEST(CriticalPath, UnreachableSinkIsRejected) {
  CpGraph G;
  uint32_t Start = G.addNode("start", 0);
  uint32_t Sink = G.addNode("sink", 10); // no incoming edges
  CpResult R = analyzeCriticalPath(G, Start, Sink);
  EXPECT_FALSE(R.Valid);
  EXPECT_NE(R.Error.find("no predecessor"), std::string::npos) << R.Error;
}

// --- Live diagnosis over a synthetic schedule ----------------------------

/// Two slices, a master that exits at 600, a drain tail to 1000. Phase
/// totals 300/150/150 split the 600 critical master ticks 2:1:1 exactly
/// (powers-of-two shares, so no float truncation in the expectations).
DoctorInput syntheticLiveInput() {
  DoctorInput In;
  In.WallTicks = 1000;
  In.MasterExitTicks = 600;
  In.NativeTicks = 300;
  In.ForkOthersTicks = 150;
  In.SleepTicks = 150;
  In.MaxSlices = 4;
  In.HostWorkers = 2;
  DoctorSliceInput S0;
  S0.Num = 0;
  S0.SpawnTime = 100;
  S0.ReadyTime = 300;
  S0.EndTime = 500;
  S0.MergeTime = 520;
  DoctorSliceInput S1;
  S1.Num = 1;
  S1.SpawnTime = 300;
  S1.ReadyTime = 600;
  S1.EndTime = 900;
  S1.MergeTime = 940;
  In.Slices = {S0, S1};
  return In;
}

TEST(Doctor, SyntheticLiveAttributionIsExact) {
  DoctorReport R = diagnose(syntheticLiveInput());
  ASSERT_TRUE(R.Valid) << R.Error;
  EXPECT_EQ(R.Engine, "live");
  EXPECT_EQ(R.Slices, 2u);

  // The partition is exact: critical == wall, kinds sum to critical.
  EXPECT_EQ(R.CriticalTicks, 1000u);
  EXPECT_EQ(R.WallTicks, 1000u);
  EXPECT_EQ(kindTicksSum(R.KindTicks), R.CriticalTicks);

  // Golden per-kind attribution: the critical walk crosses the master
  // chain (600, split 300/150/150 by the phase ratios), slice 1's body
  // (300), its merge (40) and the drain tail (60).
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::MasterRun)], 300u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::Fork)], 150u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::MasterStall)], 150u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::SliceBody)], 300u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::Merge)], 40u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::Drain)], 60u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::WindowWait)], 0u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::MergeWait)], 0u);

  // Host-attribution view sums to the critical time too.
  os::Ticks HostSum = 0;
  for (const DoctorBucket &B : R.HostBuckets)
    HostSum += B.Ticks;
  EXPECT_EQ(HostSum, R.CriticalTicks);

  // Amdahl fit: serial = master.run + fork + merge + drain = 550.
  EXPECT_EQ(R.SerialTicks, 550u);
  EXPECT_EQ(R.ParallelTicks, 450u);
  EXPECT_DOUBLE_EQ(R.SerialFraction, 0.55);
  EXPECT_EQ(R.PredictedWall2x, 775u);
  EXPECT_EQ(R.PredictedWall4x, 662u);
  EXPECT_DOUBLE_EQ(R.PredictedSpeedup2x, 1000.0 / 775.0);

  // Bottlenecks are ranked by share, capped at 3, and point at flags.
  ASSERT_EQ(R.Bottlenecks.size(), 3u);
  EXPECT_EQ(R.Bottlenecks[0].Kind, "master.run");
  EXPECT_EQ(R.Bottlenecks[1].Kind, "slice.body");
  EXPECT_GE(R.Bottlenecks[0].Ticks, R.Bottlenecks[1].Ticks);
  EXPECT_GE(R.Bottlenecks[1].Ticks, R.Bottlenecks[2].Ticks);
  EXPECT_FALSE(R.Bottlenecks[1].Hint.empty());
  EXPECT_NE(std::find(R.RecommendedFlags.begin(), R.RecommendedFlags.end(),
                      "-spmp"),
            R.RecommendedFlags.end());
}

TEST(Doctor, EmptyScheduleDiagnosesMasterOnly) {
  DoctorInput In;
  In.WallTicks = 500;
  In.MasterExitTicks = 400;
  In.NativeTicks = 400;
  DoctorReport R = diagnose(In);
  ASSERT_TRUE(R.Valid) << R.Error;
  EXPECT_EQ(R.CriticalTicks, 500u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::MasterRun)], 400u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::Drain)], 100u);
}

TEST(Doctor, CauseViewDistributesCriticalBodyTime) {
  DoctorInput In = syntheticLiveInput();
  In.CauseNames = {"analysis", "dispatch"};
  // Slice 1 (the critical body) split 3:1; slice 0 never binds.
  In.Slices[0].CauseTicks = {10, 10};
  In.Slices[1].CauseTicks = {300, 100};
  In.MasterCauseTicks = {50, 50};
  In.MasterNativeCauseTicks = 500;
  DoctorReport R = diagnose(In);
  ASSERT_TRUE(R.Valid) << R.Error;
  ASSERT_FALSE(R.CauseBuckets.empty());
  // native + causes + wait covers the wall (within per-bucket rounding).
  os::Ticks Sum = 0;
  for (const DoctorBucket &B : R.CauseBuckets)
    Sum += B.Ticks;
  EXPECT_NEAR(static_cast<double>(Sum), 1000.0, R.CauseBuckets.size());
  // The critical slice body (300 ticks) lands 3:1 on the two causes.
  os::Ticks Analysis = 0;
  for (const DoctorBucket &B : R.CauseBuckets)
    if (B.Name == "analysis")
      Analysis = B.Ticks;
  EXPECT_GE(Analysis, 225u); // >= slice 1's 3/4 share of 300
}

// --- Replay diagnosis -----------------------------------------------------

TEST(Doctor, ReplayChainAttributionIsExact) {
  ReplayDoctorInput In;
  In.WallTicks = 900;
  In.HostWorkers = 2;
  In.Slices = {{0, 100, 400}, {1, 50, 300}};
  DoctorReport R = diagnoseReplay(In);
  ASSERT_TRUE(R.Valid) << R.Error;
  EXPECT_EQ(R.Engine, "replay");
  EXPECT_EQ(R.CriticalTicks, 900u);
  EXPECT_EQ(kindTicksSum(R.KindTicks), 900u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::MasterRun)], 150u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::SliceBody)], 700u);
  EXPECT_EQ(R.KindTicks[unsigned(CpKind::Drain)], 50u);
  EXPECT_EQ(R.SerialTicks, 200u);
  EXPECT_EQ(R.ParallelTicks, 700u);
  EXPECT_EQ(R.PredictedWall2x, 550u);
  // The body-dominated replay diagnosis recommends host workers.
  EXPECT_NE(std::find(R.RecommendedFlags.begin(), R.RecommendedFlags.end(),
                      "-spmp"),
            R.RecommendedFlags.end());
}

TEST(Doctor, ReplayWallShorterThanChainIsClamped) {
  // A WallTicks below the chain sum (stale field) must not produce a
  // backward drain edge; the diagnosis clamps wall up to the chain end.
  ReplayDoctorInput In;
  In.WallTicks = 10;
  In.Slices = {{0, 100, 400}};
  DoctorReport R = diagnoseReplay(In);
  ASSERT_TRUE(R.Valid) << R.Error;
  EXPECT_EQ(R.WallTicks, 500u);
  EXPECT_EQ(R.CriticalTicks, 500u);
}

// --- spdoctor-v1 JSON document -------------------------------------------

TEST(Doctor, JsonDocumentParsesAndIsExact) {
  DoctorReport R = diagnose(syntheticLiveInput());
  ASSERT_TRUE(R.Valid);
  std::string Doc;
  {
    RawStringOstream OS(Doc);
    writeDoctorJson(R, /*TicksPerMs=*/100, OS);
  }
  std::string Err;
  std::optional<JsonValue> V = parseJson(Doc, &Err);
  ASSERT_TRUE(V.has_value()) << Err;
  EXPECT_EQ(V->get("schema")->asString(), "spdoctor-v1");
  EXPECT_EQ(V->get("engine")->asString(), "live");
  EXPECT_TRUE(V->get("valid")->asBool());
  EXPECT_EQ(V->get("wall_ticks")->asUInt(), 1000u);
  EXPECT_DOUBLE_EQ(V->get("critical_coverage")->asDouble(), 1.0);
  // The per-kind critical object sums back to critical_ticks.
  const JsonValue *Crit = V->get("critical");
  ASSERT_NE(Crit, nullptr);
  uint64_t Sum = 0;
  for (const auto &[Name, Node] : Crit->members())
    Sum += Node.get("ticks")->asUInt();
  EXPECT_EQ(Sum, V->get("critical_ticks")->asUInt());
  ASSERT_NE(V->get("amdahl"), nullptr);
  EXPECT_EQ(V->get("amdahl")->get("serial_ticks")->asUInt(), 550u);
  EXPECT_FALSE(V->get("bottlenecks")->array().empty());
}

TEST(Doctor, InvalidDiagnosisStillEmitsWellFormedJson) {
  DoctorReport R;
  R.Engine = "live";
  R.Error = "graph has a cycle";
  std::string Doc;
  {
    RawStringOstream OS(Doc);
    writeDoctorJson(R, 100, OS);
  }
  std::optional<JsonValue> V = parseJson(Doc);
  ASSERT_TRUE(V.has_value());
  EXPECT_FALSE(V->get("valid")->asBool());
  EXPECT_EQ(V->get("error")->asString(), "graph has a cycle");
}

// --- Live engine integration ---------------------------------------------

vm::Program testProgram() {
  workloads::GenParams P;
  P.Name = "doctor-test";
  P.TargetInsts = 1u << 18;
  P.NumFuncs = 4;
  P.BlocksPerFunc = 6;
  P.WorkingSetBytes = 1 << 12;
  return workloads::generateWorkload(P);
}

sp::SpRunReport runEngine(uint32_t HostWorkers, obs::TraceRecorder *Trace,
                          sp::SpOptions *OutOpts = nullptr) {
  vm::Program Prog = testProgram();
  sp::SpOptions Opts;
  Opts.SliceMs = 2; // several slices even at this size
  Opts.HostWorkers = HostWorkers;
  Opts.Trace = Trace;
  os::CostModel Model;
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog, tools::makeIcountTool(tools::IcountGranularity::BasicBlock), Opts,
      Model);
  if (OutOpts)
    *OutOpts = Opts;
  return Rep;
}

TEST(DoctorEngine, LiveDiagnosisCoversWallExactly) {
  sp::SpOptions Opts;
  sp::SpRunReport Rep = runEngine(0, nullptr, &Opts);
  DoctorReport R = diagnose(sp::doctorInput(Rep, Opts));
  ASSERT_TRUE(R.Valid) << R.Error;
  EXPECT_GT(R.Slices, 1u);
  // The headline acceptance property: attribution sums to the measured
  // wall with no residual (coverage is exactly 100%).
  EXPECT_EQ(R.CriticalTicks, Rep.WallTicks);
  EXPECT_EQ(kindTicksSum(R.KindTicks), R.CriticalTicks);
  os::Ticks HostSum = 0;
  for (const DoctorBucket &B : R.HostBuckets)
    HostSum += B.Ticks;
  EXPECT_EQ(HostSum, R.CriticalTicks);
  EXPECT_EQ(R.SerialTicks + R.ParallelTicks, R.CriticalTicks);
}

TEST(DoctorEngine, DiagnosisIsWorkerCountInvariant) {
  // The virtual schedule is deterministic under -spmp, so the diagnosis —
  // derived only from virtual times — must be byte-identical for any
  // worker count.
  auto DocFor = [](uint32_t Workers) {
    sp::SpOptions Opts;
    sp::SpRunReport Rep = runEngine(Workers, nullptr, &Opts);
    DoctorReport R = diagnose(sp::doctorInput(Rep, Opts));
    R.HostWorkers = 0; // the one field that names the pool size itself
    std::string Doc;
    RawStringOstream OS(Doc);
    writeDoctorJson(R, 100'000, OS);
    return Doc;
  };
  std::string Serial = DocFor(0);
  EXPECT_EQ(Serial, DocFor(2));
  EXPECT_EQ(Serial, DocFor(4));
}

TEST(DoctorEngine, DroppedCounterIsGatedOnAttachment) {
  auto HasCounter = [](const StatisticRegistry &Stats, std::string_view Name) {
    for (const StatisticRegistry::Entry &E : Stats.entries())
      if (E.Name == Name)
        return true;
    return false;
  };

  // Bare run: the default counter name set must not grow.
  sp::SpRunReport Bare = runEngine(0, nullptr);
  EXPECT_FALSE(Bare.TraceAttached);
  StatisticRegistry BareStats;
  sp::exportStatistics(Bare, BareStats);
  EXPECT_FALSE(HasCounter(BareStats, "obs.trace.dropped"));
  EXPECT_FALSE(HasCounter(BareStats, "host.trace.droppedspans"));

  // Traced run: the drop counter appears (zero or not), so dashboards can
  // tell "no drops" from "no recorder".
  obs::TraceRecorder Rec;
  sp::SpRunReport Traced = runEngine(0, &Rec);
  EXPECT_TRUE(Traced.TraceAttached);
  StatisticRegistry TracedStats;
  sp::exportStatistics(Traced, TracedStats);
  EXPECT_TRUE(HasCounter(TracedStats, "obs.trace.dropped"));
  EXPECT_EQ(TracedStats.get("obs.trace.dropped"), Traced.TraceDropped);
}

// --- Flight recorder ------------------------------------------------------

std::string tempBundleDir(const char *Tag) {
  return ::testing::TempDir() + "spflight-" + Tag + "-" +
         std::to_string(::getpid());
}

bool dirExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

TEST(FlightRecorderTest, CleanRunWritesNothing) {
  std::string Dir = tempBundleDir("clean");
  FlightRecorder F(Dir, 100);
  EXPECT_FALSE(F.triggered());
  // Teardown dumps are all no-ops without a trigger.
  StatisticRegistry Stats;
  F.writeCounters(Stats);
  F.writeDoctor(diagnose(syntheticLiveInput()));
  F.writeManifest();
  EXPECT_FALSE(dirExists(Dir));
  EXPECT_TRUE(F.error().empty());
}

TEST(FlightRecorderTest, TriggeredRunDumpsParseableBundle) {
  std::string Dir = tempBundleDir("armed");
  FlightRecorder F(Dir, 100);
  F.recordEvent("breaker.trip", 3, 2, 4500, "2 of 3 windows failed");
  EXPECT_TRUE(F.triggered());
  EXPECT_EQ(F.eventCount(), 1u);

  StatisticRegistry Stats;
  Stats.counter("superpin.slices.total") = 3;
  F.writeCounters(Stats);
  F.writeDoctor(diagnose(syntheticLiveInput()));
  F.writeManifest();
  ASSERT_TRUE(F.error().empty()) << F.error();

  std::optional<JsonValue> M = parseJson(slurp(Dir + "/MANIFEST.json"));
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->get("schema")->asString(), "spflight-v1");
  const std::vector<JsonValue> &Events = M->get("events")->array();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].get("kind")->asString(), "breaker.trip");
  EXPECT_EQ(Events[0].get("slice")->asUInt(), 3u);
  EXPECT_EQ(Events[0].get("detail")->asString(), "2 of 3 windows failed");
  // The inventory lists exactly the files that were written, and each one
  // parses.
  bool SawDoctor = false;
  for (const JsonValue &File : M->get("files")->array()) {
    EXPECT_TRUE(parseJson(slurp(Dir + "/" + File.asString())).has_value())
        << File.asString();
    SawDoctor |= File.asString() == "doctor.json";
  }
  EXPECT_TRUE(SawDoctor);
}

TEST(FlightRecorderTest, ConcurrentEventsAreAllRetained) {
  // Containment events fire from host worker threads; the recorder must
  // not lose or corrupt any under contention (TSan tier exercises this).
  std::string Dir = tempBundleDir("mt");
  FlightRecorder F(Dir, 100);
  constexpr unsigned Threads = 4, PerThread = 64;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&F, T] {
      for (unsigned I = 0; I < PerThread; ++I)
        F.recordEvent("host.contained", T, I, I, "stress");
    });
  for (std::thread &Th : Pool)
    Th.join();
  EXPECT_TRUE(F.triggered());
  EXPECT_EQ(F.eventCount(), uint64_t(Threads) * PerThread);
  F.writeManifest();
  std::optional<JsonValue> M = parseJson(slurp(Dir + "/MANIFEST.json"));
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->get("events")->array().size(), size_t(Threads) * PerThread);
}

TEST(FlightRecorderTest, EngineCleanRunWithFlightDirWritesNothing) {
  // Arming the recorder on a healthy run is free: no directory, no output
  // perturbation (the byte-identity half is covered by the CLI smoke and
  // the worker-invariance test above).
  std::string Dir = tempBundleDir("engine");
  vm::Program Prog = testProgram();
  sp::SpOptions Opts;
  Opts.SliceMs = 2;
  Opts.FlightDir = Dir;
  os::CostModel Model;
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog, tools::makeIcountTool(tools::IcountGranularity::BasicBlock), Opts,
      Model);
  EXPECT_GT(Rep.Slices.size(), 1u);
  EXPECT_FALSE(dirExists(Dir));
}

} // namespace
