//===- tests/analysis_test.cpp - Static analysis subsystem tests ----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Covers src/analysis: CFG construction (leaders, edges, indirect-target
// over-approximation, thread roots), the dataflow passes (unreachable,
// uninit-reg, stack balance), the static syscall-site map, the lint driver
// on crafted-bad and known-clean corpora, the VerifyIssue pretty-printer,
// and the engine integrations (syscall prediction, trace seeding).
//
//===----------------------------------------------------------------------===//

#include "analysis/Loops.h"
#include "analysis/Passes.h"
#include "analysis/Redundancy.h"
#include "os/DirectRun.h"
#include "os/Syscalls.h"
#include "pin/Runner.h"
#include "superpin/Engine.h"
#include "tools/Icount.h"
#include "vm/Disassembler.h"
#include "workloads/Spec2000.h"

#include "TestPrograms.h"
#include "gtest/gtest.h"

#include <fstream>
#include <sstream>

using namespace spin;
using namespace spin::analysis;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::sp;
using namespace spin::test;
using namespace spin::tools;
using namespace spin::vm;
using namespace spin::workloads;

namespace {

std::vector<Finding> lintOf(const Program &Prog) { return lintProgram(Prog); }

std::string findingsToString(const Program &Prog,
                             const std::vector<Finding> &Fs) {
  std::string S;
  for (const Finding &F : Fs)
    S += formatFinding(Prog, F) + "\n";
  return S;
}

/// True if any finding comes from \p Pass.
bool hasPass(const std::vector<Finding> &Fs, std::string_view Pass) {
  for (const Finding &F : Fs)
    if (F.Pass == Pass)
      return true;
  return false;
}

// --- CFG construction ----------------------------------------------------

TEST(Cfg, CountdownStructure) {
  Program P = makeCountdown(5);
  Cfg G = buildCfg(P);
  ASSERT_GT(G.numBlocks(), 1u);
  // Every instruction belongs to exactly one block, blocks tile the text.
  uint64_t Covered = 0;
  for (const BasicBlock &B : G.blocks()) {
    EXPECT_EQ(B.FirstIndex, Covered);
    Covered += B.NumInsts;
  }
  EXPECT_EQ(Covered, P.Text.size());
  // The whole program is reachable from the entry root.
  EXPECT_EQ(G.numReachableInsts(), P.Text.size());
  ASSERT_EQ(G.roots().size(), 1u);
  EXPECT_TRUE(G.block(G.roots()[0]).IsRoot);
}

TEST(Cfg, BranchMakesTwoSuccessors) {
  Program P = makeCountdown(5);
  Cfg G = buildCfg(P);
  // Find the block ending in the loop's bne: it must have exactly two
  // successors (loop head + fall-through).
  bool FoundBne = false;
  for (const BasicBlock &B : G.blocks()) {
    const Instruction &Last = P.Text[B.lastIndex()];
    if (Last.Op == Opcode::Bne) {
      FoundBne = true;
      EXPECT_EQ(B.Succs.size(), 2u);
    }
  }
  EXPECT_TRUE(FoundBne);
}

TEST(Cfg, CallGetsTargetAndFallthroughEdges) {
  Program P = mustAssemble(R"(
main:
  call fn
  movi r0, 0
  movi r1, 0
  syscall
fn:
  movi r2, 7
  ret
)",
                           "calls");
  Cfg G = buildCfg(P);
  uint32_t CallBlock = *G.blockOfPc(Program::addressOfIndex(0));
  ASSERT_EQ(G.block(CallBlock).Succs.size(), 2u);
  EXPECT_EQ(G.numReachableInsts(), P.Text.size());
  // The ret block is terminal.
  uint32_t FnBlock = G.blockOfIndex(P.Text.size() - 1);
  EXPECT_TRUE(G.block(FnBlock).Succs.empty());
}

TEST(Cfg, IndirectTargetsFromDataWordsAndMovi) {
  // A jump table in .data plus a movi-loaded function pointer: both must
  // be candidates, and the jr must get edges to every candidate.
  Program P = mustAssemble(R"(
main:
  movi r1, table
  ld64 r2, [r1+0]
  jr r2
fa:
  movi r3, fb
  jr r3
fb:
  movi r0, 0
  movi r1, 0
  syscall
.data
table: .word64 fa
)",
                           "indirect");
  Cfg G = buildCfg(P);
  uint64_t FaIdx = Program::indexOfAddress(P.Symbols.at("fa"));
  uint64_t FbIdx = Program::indexOfAddress(P.Symbols.at("fb"));
  const std::vector<uint64_t> &Cands = G.indirectTargets();
  EXPECT_NE(std::find(Cands.begin(), Cands.end(), FaIdx), Cands.end())
      << "data word must make fa a candidate";
  EXPECT_NE(std::find(Cands.begin(), Cands.end(), FbIdx), Cands.end())
      << "movi immediate must make fb a candidate";
  // Everything is reachable through the over-approximated jr edges.
  EXPECT_EQ(G.numReachableInsts(), P.Text.size());
}

TEST(Cfg, ExitSyscallEndsControlFlow) {
  Program P = mustAssemble(R"(
main:
  movi r0, 0
  movi r1, 0
  syscall
  movi r2, 1
  jmp main
)",
                           "exitfall");
  Cfg G = buildCfg(P);
  // The exit syscall's statically known number cuts the fall-through
  // edge, leaving the trailing code unreachable.
  EXPECT_LT(G.numReachableInsts(), P.Text.size());
}

TEST(Cfg, ThreadCreateTargetBecomesRoot) {
  Program P = mustAssemble(R"(
main:
  movi r0, 4
  movi r1, 4096
  syscall
  addi r2, r0, 4096
  movi r1, worker
  movi r0, 11
  syscall
  movi r0, 0
  movi r1, 0
  syscall
worker:
  movi r0, 12
  syscall
)",
                           "threads");
  Cfg G = buildCfg(P);
  uint32_t WorkerBlock =
      *G.blockOfPc(P.Symbols.at("worker"));
  EXPECT_TRUE(G.block(WorkerBlock).IsRoot);
  EXPECT_TRUE(G.block(WorkerBlock).Reachable);
  ASSERT_GE(G.roots().size(), 2u);
}

TEST(Cfg, StaticRegValueResolvesMoviAndGivesUpOnMov) {
  Program P = mustAssemble(R"(
main:
  movi r5, 3
  movi r0, 6
  syscall
  mov r0, r5
  syscall
  movi r0, 0
  movi r1, 0
  syscall
)",
                           "sysnum");
  Cfg G = buildCfg(P);
  // First syscall (index 2): r0 = 6 via the adjacent movi.
  EXPECT_EQ(G.staticRegValue(2, 0), std::optional<uint64_t>(6));
  // Second syscall (index 4): r0 came through a mov — unknowable.
  EXPECT_EQ(G.staticRegValue(4, 0), std::nullopt);
}

// --- Passes: negatives on crafted-bad programs ---------------------------

TEST(Passes, FlagsUnreachableCode) {
  Program P = mustAssemble(R"(
main:
  movi r0, 0
  movi r1, 0
  syscall
dead:
  movi r2, 1
  jmp dead
)",
                           "dead");
  Cfg G = buildCfg(P);
  std::vector<Finding> Fs = findUnreachableCode(G);
  ASSERT_EQ(Fs.size(), 1u) << "consecutive dead blocks merge";
  EXPECT_EQ(Fs[0].Issue.InstIndex, 3u);
  EXPECT_NE(Fs[0].Issue.Message.find("unreachable"), std::string::npos);
}

TEST(Passes, FlagsReadBeforeWrite) {
  Program P = mustAssemble(R"(
main:
  add r2, r1, r3
  movi r0, 0
  movi r1, 0
  syscall
)",
                           "uninit");
  std::vector<Finding> Fs = findUninitRegReads(buildCfg(P));
  ASSERT_EQ(Fs.size(), 2u) << findingsToString(P, Fs);
  EXPECT_NE(Fs[0].Issue.Message.find("r1"), std::string::npos);
  EXPECT_NE(Fs[1].Issue.Message.find("r3"), std::string::npos);
}

TEST(Passes, FlagsPartiallyDefinedJoin) {
  // r4 is written on the taken path only; the join must intersect away
  // its definedness before the read.
  Program P = mustAssemble(R"(
main:
  movi r1, 1
  movi r2, 2
  beq r1, r2, skip
  movi r4, 9
skip:
  add r5, r4, r1
  movi r0, 0
  movi r1, 0
  syscall
)",
                           "join");
  std::vector<Finding> Fs = findUninitRegReads(buildCfg(P));
  ASSERT_EQ(Fs.size(), 1u) << findingsToString(P, Fs);
  EXPECT_EQ(Fs[0].Issue.InstIndex, 4u);
  EXPECT_NE(Fs[0].Issue.Message.find("r4"), std::string::npos);
}

TEST(Passes, SpIsDefinedAtEntry) {
  // push reads sp at the first instruction: must NOT be flagged (the
  // loader guarantees sp).
  Program P = mustAssemble(R"(
main:
  movi r1, 5
  push r1
  pop r2
  movi r0, 0
  movi r1, 0
  syscall
)",
                           "sp");
  EXPECT_TRUE(findUninitRegReads(buildCfg(P)).empty());
}

TEST(Passes, FlagsPopUnderflow) {
  Program P = mustAssemble(R"(
main:
  call fn
  movi r0, 0
  movi r1, 0
  syscall
fn:
  pop r3
  ret
)",
                           "underflow");
  std::vector<Finding> Fs = findStackImbalance(buildCfg(P));
  ASSERT_EQ(Fs.size(), 1u) << findingsToString(P, Fs);
  EXPECT_NE(Fs[0].Issue.Message.find("empty stack frame"),
            std::string::npos);
}

TEST(Passes, FlagsUnbalancedReturn) {
  Program P = mustAssemble(R"(
main:
  call fn
  movi r0, 0
  movi r1, 0
  syscall
fn:
  movi r3, 1
  push r3
  ret
)",
                           "leak");
  std::vector<Finding> Fs = findStackImbalance(buildCfg(P));
  ASSERT_EQ(Fs.size(), 1u) << findingsToString(P, Fs);
  EXPECT_NE(Fs[0].Issue.Message.find("8 bytes still pushed"),
            std::string::npos);
}

TEST(Passes, BalancedFunctionIsClean) {
  Program P = mustAssemble(R"(
main:
  call fn
  movi r0, 0
  movi r1, 0
  syscall
fn:
  push r3
  movi r3, 2
  addi sp, sp, -16
  addi sp, sp, 16
  pop r3
  ret
)",
                           "balanced");
  EXPECT_TRUE(findStackImbalance(buildCfg(P)).empty());
}

// --- Syscall-site map ----------------------------------------------------

TEST(SyscallMap, WorkloadSitesFullyClassified) {
  Program Prog = buildWorkload(findWorkload("gzip"), 0.02);
  Cfg G = buildCfg(Prog);
  StaticSyscallMap Map = buildSyscallSiteMap(G);
  ASSERT_GT(Map.numSites(), 0u);
  // The generator always emits `movi r0, N` adjacent to the syscall, so
  // every site resolves and pre-classifies identically to trap time.
  EXPECT_EQ(Map.numClassified(), Map.numSites());
  for (uint64_t I = 0; I != Prog.Text.size(); ++I) {
    if (!Prog.Text[I].isSyscall())
      continue;
    const SyscallSite *Site = Map.site(Program::addressOfIndex(I));
    ASSERT_NE(Site, nullptr);
    ASSERT_TRUE(Site->NumberKnown);
    EXPECT_EQ(Site->Class, classifySyscall(Site->Number));
  }
}

// --- Lint driver on known-clean corpora ----------------------------------

TEST(Lint, CleanOnGeneratedWorkloadVariations) {
  // Property: buildWorkload/generateWorkload output analyzes clean under
  // every pass across >= 32 distinct parameterizations.
  unsigned Checked = 0;
  for (const WorkloadInfo &Info : spec2000Suite()) { // 26 entries
    Program Prog = buildWorkload(Info, 0.01);
    std::vector<Finding> Fs = lintOf(Prog);
    EXPECT_TRUE(Fs.empty())
        << Info.Name << ":\n" << findingsToString(Prog, Fs);
    ++Checked;
  }
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    GenParams P;
    P.Name = "prop" + std::to_string(Seed);
    P.Seed = 0xbeef + Seed * 0x1111;
    P.TargetInsts = 50'000;
    P.NumFuncs = 2 + static_cast<unsigned>(Seed) % 7;
    P.BlocksPerFunc = 2 + static_cast<unsigned>(Seed * 3) % 9;
    P.AluPerBlock = 1 + static_cast<unsigned>(Seed) % 5;
    P.DiamondBranches = Seed % 2 == 0;
    P.PointerChase = Seed % 3 == 0;
    P.SyscallMask = Seed % 2 ? 15 : 0;
    P.Mix = Seed % 2 ? SysMix::Mixed : SysMix::None;
    P.ChainEvery = static_cast<unsigned>(Seed) % 4;
    Program Prog = generateWorkload(P);
    std::vector<Finding> Fs = lintOf(Prog);
    EXPECT_TRUE(Fs.empty())
        << P.Name << ":\n" << findingsToString(Prog, Fs);
    ++Checked;
  }
  EXPECT_GE(Checked, 32u);
}

TEST(Lint, CleanOnExamplePrograms) {
  for (const char *Name : {"primes.s", "threads.s"}) {
    std::string Path =
        std::string(SPIN_SOURCE_DIR "/examples/programs/") + Name;
    std::ifstream In(Path);
    ASSERT_TRUE(In.good()) << "cannot open " << Path;
    std::stringstream Buf;
    Buf << In.rdbuf();
    Program Prog = mustAssemble(Buf.str(), Name);
    std::vector<Finding> Fs = lintOf(Prog);
    EXPECT_TRUE(Fs.empty())
        << Name << ":\n" << findingsToString(Prog, Fs);
  }
}

TEST(Lint, VerifierRunsAsPassZero) {
  Program P = makeCountdown(3);
  P.Text[0].A = 99; // structural breakage the verifier owns
  std::vector<Finding> Fs = lintOf(P);
  ASSERT_FALSE(Fs.empty());
  EXPECT_TRUE(hasPass(Fs, "verify"));
}

// --- VerifyIssue pretty-printer ------------------------------------------

TEST(Format, ProgramLevelIssueHasNoSentinel) {
  // An empty program yields a program-level issue (no instruction
  // index); the formatter must say "program:" instead of rendering the
  // ~0 sentinel as a bogus 20-digit instruction number.
  Program Empty;
  Empty.Name = "empty";
  std::vector<VerifyIssue> Issues = verifyProgram(Empty);
  ASSERT_FALSE(Issues.empty());
  ASSERT_EQ(Issues[0].InstIndex, ProgramIssueIndex);
  std::string S = formatVerifyIssue(Empty, Issues[0]);
  EXPECT_EQ(S.find("18446744073709551615"), std::string::npos) << S;
  EXPECT_EQ(S.rfind("program: ", 0), 0u) << S;
}

TEST(Format, InstructionIssueHasPcAndDisassembly) {
  Program P = makeCountdown(3);
  VerifyIssue Issue{3, "something odd"};
  std::string S = formatVerifyIssue(P, Issue);
  EXPECT_NE(S.find("pc 0x"), std::string::npos) << S;
  EXPECT_NE(S.find(disassemble(P.Text[3])), std::string::npos) << S;
  EXPECT_NE(S.find("something odd"), std::string::npos) << S;
}

// --- Dominator tree ------------------------------------------------------

/// Block id of the block starting at label \p Label, or aborts the test.
uint32_t blockAt(const Cfg &G, const Program &P, const char *Label) {
  std::optional<uint32_t> B = G.blockOfPc(P.Symbols.at(Label));
  EXPECT_TRUE(B.has_value()) << Label;
  return B ? *B : InvalidBlock;
}

TEST(DomTree, CountdownChainGolden) {
  Program P = makeCountdown(5);
  Cfg G = buildCfg(P);
  DomTree DT(G);
  uint32_t Entry = blockAt(G, P, "main");
  uint32_t LoopB = blockAt(G, P, "loop");
  EXPECT_EQ(DT.idom(Entry), InvalidBlock) << "roots have no idom";
  EXPECT_EQ(DT.idom(LoopB), Entry);
  for (uint32_t B = 0; B != G.numBlocks(); ++B) {
    EXPECT_TRUE(DT.reachable(B));
    EXPECT_TRUE(DT.dominates(Entry, B)) << "entry dominates everything";
  }
  uint32_t Exit = G.blockOfIndex(P.Text.size() - 1);
  EXPECT_TRUE(DT.dominates(LoopB, Exit));
  EXPECT_FALSE(DT.dominates(Exit, LoopB));
  EXPECT_TRUE(DT.dominates(LoopB, LoopB)) << "dominance is reflexive";
}

TEST(DomTree, NestedLoopsIdomChain) {
  Program P = makeNestedLoops(3, 4);
  Cfg G = buildCfg(P);
  DomTree DT(G);
  uint32_t Entry = blockAt(G, P, "main");
  uint32_t Outer = blockAt(G, P, "outer");
  uint32_t Inner = blockAt(G, P, "inner");
  EXPECT_EQ(DT.idom(Outer), Entry);
  EXPECT_EQ(DT.idom(Inner), Outer);
  EXPECT_TRUE(DT.dominates(Outer, Inner));
  EXPECT_FALSE(DT.dominates(Inner, Outer));
}

TEST(DomTree, ThreadRootsDoNotDominateEachOther) {
  // Two entry roots (main + the created thread) hang off the virtual
  // super-root: queries across the trees answer false, not loop.
  Program P = mustAssemble(R"(
main:
  movi r0, 4
  movi r1, 4096
  syscall
  addi r2, r0, 4096
  movi r1, worker
  movi r0, 11
  syscall
  movi r0, 0
  movi r1, 0
  syscall
worker:
  movi r0, 12
  syscall
)",
                           "threads");
  Cfg G = buildCfg(P);
  DomTree DT(G);
  uint32_t Entry = blockAt(G, P, "main");
  uint32_t Worker = blockAt(G, P, "worker");
  EXPECT_TRUE(DT.reachable(Worker));
  EXPECT_EQ(DT.idom(Worker), InvalidBlock) << "thread entry is a root";
  EXPECT_FALSE(DT.dominates(Entry, Worker));
  EXPECT_FALSE(DT.dominates(Worker, Entry));
}

// --- Natural-loop forest -------------------------------------------------

TEST(Loops, CountdownIsASelfLoopWithIvAndTrip) {
  Program P = makeCountdown(7);
  Cfg G = buildCfg(P);
  DomTree DT(G);
  LoopForest F(G, DT);
  ASSERT_EQ(F.numLoops(), 1u);
  const Loop &L = F.loop(0);
  EXPECT_EQ(L.Header, blockAt(G, P, "loop"));
  EXPECT_TRUE(L.SelfLoop);
  EXPECT_EQ(L.Blocks.size(), 1u);
  ASSERT_EQ(L.Latches.size(), 1u);
  EXPECT_EQ(L.Latches[0], L.Header);
  EXPECT_EQ(L.Depth, 1u);
  EXPECT_EQ(L.Parent, InvalidLoop);
  EXPECT_FALSE(L.HasCallOrSyscall);
  const Loop::InductionVar *IV = L.findIV(1);
  ASSERT_NE(IV, nullptr) << "r1 is the only addi-written register";
  EXPECT_EQ(IV->Step, -1);
  EXPECT_EQ(L.EstTrip, std::optional<uint64_t>(7));
  EXPECT_EQ(F.innermostLoopOf(L.Header), 0u);
  EXPECT_FALSE(F.hasIrreducibleRegions());
}

TEST(Loops, NestedLoopsNestWithDepths) {
  Program P = makeNestedLoops(4, 6);
  Cfg G = buildCfg(P);
  DomTree DT(G);
  LoopForest F(G, DT);
  ASSERT_EQ(F.numLoops(), 2u);
  uint32_t OuterHdr = blockAt(G, P, "outer");
  uint32_t InnerHdr = blockAt(G, P, "inner");
  const Loop *Outer = nullptr;
  const Loop *Inner = nullptr;
  uint32_t OuterId = InvalidLoop;
  uint32_t InnerId = InvalidLoop;
  for (uint32_t I = 0; I != F.numLoops(); ++I) {
    if (F.loop(I).Header == OuterHdr) {
      Outer = &F.loop(I);
      OuterId = I;
    } else if (F.loop(I).Header == InnerHdr) {
      Inner = &F.loop(I);
      InnerId = I;
    }
  }
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Outer->Depth, 1u);
  EXPECT_EQ(Outer->Parent, InvalidLoop);
  EXPECT_EQ(Outer->Blocks.size(), 3u);
  EXPECT_FALSE(Outer->SelfLoop);
  EXPECT_EQ(Inner->Depth, 2u);
  EXPECT_EQ(Inner->Parent, OuterId);
  EXPECT_TRUE(Inner->SelfLoop);
  EXPECT_TRUE(Outer->contains(InnerHdr));
  EXPECT_EQ(F.innermostLoopOf(InnerHdr), InnerId)
      << "innermost query prefers the deeper loop";
  EXPECT_EQ(F.innermostLoopOf(OuterHdr), OuterId);
  // r1 steps only in the outer body, r2 only in the inner body.
  EXPECT_NE(Outer->findIV(1), nullptr);
  EXPECT_NE(Inner->findIV(2), nullptr);
}

TEST(Loops, SharedHeaderBackEdgesMergeIntoOneLoop) {
  Program P = makeSharedHeaderLoop(10);
  Cfg G = buildCfg(P);
  DomTree DT(G);
  LoopForest F(G, DT);
  ASSERT_EQ(F.numLoops(), 1u);
  const Loop &L = F.loop(0);
  EXPECT_EQ(L.Header, blockAt(G, P, "head"));
  EXPECT_EQ(L.Latches.size(), 2u) << "both back edges feed one Loop";
  EXPECT_EQ(L.Blocks.size(), 3u);
  EXPECT_FALSE(L.SelfLoop);
  EXPECT_FALSE(F.hasIrreducibleRegions());
}

TEST(Loops, IrreducibleRegionFormsNoLoopAndIsFlagged) {
  Program P = makeIrreducible();
  Cfg G = buildCfg(P);
  DomTree DT(G);
  LoopForest F(G, DT);
  EXPECT_EQ(F.numLoops(), 0u) << "no dominating header, no natural loop";
  EXPECT_TRUE(F.hasIrreducibleRegions());
  uint32_t A = blockAt(G, P, "a");
  uint32_t B = blockAt(G, P, "b");
  EXPECT_TRUE(F.inIrreducibleRegion(A));
  EXPECT_TRUE(F.inIrreducibleRegion(B));
  EXPECT_FALSE(F.inIrreducibleRegion(blockAt(G, P, "main")));
  EXPECT_FALSE(DT.dominates(A, B));
  EXPECT_FALSE(DT.dominates(B, A));
}

// --- Redundancy classification -------------------------------------------

TEST(Redundancy, SelfLoopAggregatesButNeverHoists) {
  Program P = makeCountdown(5);
  Cfg G = buildCfg(P);
  RedundancyInfo RI(G);
  uint32_t LoopB = blockAt(G, P, "loop");
  EXPECT_EQ(RI.block(LoopB).Kind, BlockRedux::Aggregatable);
  EXPECT_EQ(RI.block(blockAt(G, P, "main")).Kind, BlockRedux::Stateful)
      << "straight-line code outside loops is never suppressed";
  EXPECT_EQ(RI.numSuppressibleBlocks(), 1u);
  EXPECT_EQ(RI.classifyPc(P.Symbols.at("loop")),
            BlockRedux::Aggregatable);
}

TEST(Redundancy, ReducibleMultiBlockLoopsHoist) {
  Program P = makeNestedLoops(3, 3);
  Cfg G = buildCfg(P);
  RedundancyInfo RI(G);
  EXPECT_EQ(RI.block(blockAt(G, P, "inner")).Kind,
            BlockRedux::Aggregatable);
  EXPECT_EQ(RI.block(blockAt(G, P, "outer")).Kind, BlockRedux::Hoistable);
  Program M = makeMemCounterLoop(8);
  Cfg GM = buildCfg(M);
  RedundancyInfo RM(GM);
  EXPECT_EQ(RM.block(blockAt(GM, M, "loop")).Kind, BlockRedux::Hoistable)
      << "memory traffic alone does not veto (calls stay byte-identical "
         "via deferred aggregation)";
}

TEST(Redundancy, IrreducibleRegionsAreNeverSuppressible) {
  Program P = makeIrreducible();
  Cfg G = buildCfg(P);
  RedundancyInfo RI(G);
  EXPECT_EQ(RI.block(blockAt(G, P, "a")).Kind, BlockRedux::Stateful);
  EXPECT_EQ(RI.block(blockAt(G, P, "b")).Kind, BlockRedux::Stateful);
  EXPECT_EQ(RI.numSuppressibleBlocks(), 0u);
  EXPECT_NE(RI.block(blockAt(G, P, "a")).Why.find("irreducible"),
            std::string::npos);
}

TEST(Redundancy, LoopsWithCallsStayStateful) {
  Program P = mustAssemble(R"(
main:
  movi r1, 5
  movi r5, 0
loop:
  call fn
  addi r1, r1, -1
  bne r1, r5, loop
  movi r0, 0
  movi r1, 0
  syscall
fn:
  movi r3, 1
  ret
)",
                           "callloop");
  Cfg G = buildCfg(P);
  RedundancyInfo RI(G);
  EXPECT_EQ(RI.block(blockAt(G, P, "loop")).Kind, BlockRedux::Stateful);
}

TEST(Redundancy, ClassifyPcRejectsForeignAddresses) {
  Program P = makeCountdown(3);
  Cfg G = buildCfg(P);
  RedundancyInfo RI(G);
  EXPECT_EQ(RI.classifyPc(0), BlockRedux::Stateful);
  EXPECT_EQ(RI.classifyPc(AddressLayout::TextBase + 2),
            BlockRedux::Stateful)
      << "misaligned";
  EXPECT_EQ(RI.classifyPc(Program::addressOfIndex(P.Text.size())),
            BlockRedux::Stateful)
      << "one past the end";
}

// --- Engine integration --------------------------------------------------

Program syscallWorkload() {
  GenParams P;
  P.Name = "analysis-engine";
  P.TargetInsts = 300'000;
  P.NumFuncs = 5;
  P.BlocksPerFunc = 5;
  P.AluPerBlock = 3;
  P.WorkingSetBytes = 1 << 14;
  P.SyscallMask = 31;
  P.Mix = SysMix::Mixed;
  return generateWorkload(P);
}

SpOptions fastOptions() {
  SpOptions Opts;
  Opts.SliceMs = 50;
  return Opts;
}

TEST(Engine, SyscallPredictionIsCountedAndBehaviorNeutral) {
  Program Prog = syscallWorkload();
  CostModel Model;
  SpOptions On = fastOptions();
  SpRunReport WithMap = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction), On, Model);
  ASSERT_GT(WithMap.MasterSyscalls, 0u);
  EXPECT_GT(WithMap.StaticSyscallSites, 0u);
  // Generated workloads classify every site statically, so the scheduler
  // never has to fall back to trap-time classification.
  EXPECT_EQ(WithMap.PredictedSyscallSites, WithMap.MasterSyscalls);
  EXPECT_EQ(WithMap.TrapClassifiedSyscalls, 0u);

  SpOptions Off = fastOptions();
  Off.StaticSyscallPrediction = false;
  SpRunReport NoMap = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction), Off, Model);
  EXPECT_EQ(NoMap.PredictedSyscallSites, 0u);
  EXPECT_EQ(NoMap.TrapClassifiedSyscalls, NoMap.MasterSyscalls);
  // Prediction must not perturb the run: bit-identical timing and output.
  EXPECT_EQ(WithMap.WallTicks, NoMap.WallTicks);
  EXPECT_EQ(WithMap.FiniOutput, NoMap.FiniOutput);
  EXPECT_EQ(WithMap.NumSlices, NoMap.NumSlices);
}

TEST(Engine, SerialSeedingPreservesResultsAndRemovesCompileStalls) {
  Program Prog = syscallWorkload();
  CostModel Model;
  RunReport Cold = runSerialPin(Prog, Model, 100,
                                makeIcountTool(IcountGranularity::BasicBlock));
  ASSERT_GT(Cold.TracesCompiled, 0u);
  EXPECT_EQ(Cold.TracesSeeded, 0u);

  Cfg G = buildCfg(Prog);
  PinVmConfig Config;
  Config.SeedCfg = &G;
  RunReport Seeded = runSerialPin(
      Prog, Model, 100, makeIcountTool(IcountGranularity::BasicBlock),
      Config);
  EXPECT_EQ(Seeded.Insts, Cold.Insts);
  EXPECT_EQ(Seeded.FiniOutput, Cold.FiniOutput);
  EXPECT_EQ(Seeded.ExitCode, Cold.ExitCode);
  EXPECT_GT(Seeded.TracesSeeded, 0u);
  EXPECT_GT(Seeded.SeedTicks, 0u);
  // Static seeding warms the cache in one pass: first-execution compile
  // stalls (lazy trace compiles) all but disappear. Traces starting at
  // post-branch pcs that are not static leaders may still compile lazily.
  EXPECT_LT(Seeded.TracesCompiled, Cold.TracesCompiled / 2);
}

TEST(Engine, SuperPinTraceSeedKeepsResults) {
  Program Prog = syscallWorkload();
  CostModel Model;
  SpRunReport Base = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction), fastOptions(),
      Model);
  SpOptions Seed = fastOptions();
  Seed.StaticTraceSeed = true;
  SpRunReport Seeded = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction), Seed, Model);
  EXPECT_GT(Seeded.TracesSeeded, 0u);
  EXPECT_TRUE(Seeded.PartitionOk);
  EXPECT_EQ(Seeded.FiniOutput, Base.FiniOutput);
  EXPECT_EQ(Seeded.SliceInsts, Base.SliceInsts);
  EXPECT_LT(Seeded.TracesCompiled, Base.TracesCompiled);
}

} // namespace
