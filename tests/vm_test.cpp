//===- tests/vm_test.cpp - Guest VM unit tests ----------------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "vm/Assembler.h"
#include "vm/Disassembler.h"
#include "vm/Exec.h"
#include "vm/GuestMemory.h"
#include "vm/Interpreter.h"
#include "vm/ProgramBuilder.h"

#include "TestPrograms.h"
#include "os/DirectRun.h"
#include "support/Random.h"

#include "gtest/gtest.h"

using namespace spin;
using namespace spin::vm;
using namespace spin::test;

namespace {

// --- GuestMemory -----------------------------------------------------

TEST(GuestMemory, ReadOfUnmappedIsZero) {
  GuestMemory M;
  EXPECT_EQ(M.read64(0x1000), 0u);
  EXPECT_EQ(M.read8(0xdeadbeef), 0u);
  EXPECT_EQ(M.numPages(), 0u);
}

TEST(GuestMemory, ScalarRoundTrip) {
  GuestMemory M;
  M.write8(10, 0xab);
  M.write16(100, 0xbeef);
  M.write32(200, 0xdeadbeefu);
  M.write64(300, 0x0123456789abcdefULL);
  EXPECT_EQ(M.read8(10), 0xab);
  EXPECT_EQ(M.read16(100), 0xbeef);
  EXPECT_EQ(M.read32(200), 0xdeadbeefu);
  EXPECT_EQ(M.read64(300), 0x0123456789abcdefULL);
}

TEST(GuestMemory, CrossPageAccess) {
  GuestMemory M;
  uint64_t Addr = PageSize - 3;
  M.write64(Addr, 0x1122334455667788ULL);
  EXPECT_EQ(M.read64(Addr), 0x1122334455667788ULL);
  EXPECT_EQ(M.numPages(), 2u);
}

TEST(GuestMemory, LittleEndianLayout) {
  GuestMemory M;
  M.write32(0, 0x04030201u);
  EXPECT_EQ(M.read8(0), 1);
  EXPECT_EQ(M.read8(1), 2);
  EXPECT_EQ(M.read8(2), 3);
  EXPECT_EQ(M.read8(3), 4);
}

TEST(GuestMemory, ForkSharesThenIsolates) {
  GuestMemory Parent;
  Parent.write64(0x1000, 42);
  GuestMemory Child = Parent.fork();
  EXPECT_EQ(Child.read64(0x1000), 42u);
  EXPECT_EQ(Parent.numSharedPages(), 1u);

  Child.write64(0x1000, 99);
  EXPECT_EQ(Parent.read64(0x1000), 42u) << "child write leaked to parent";
  EXPECT_EQ(Child.read64(0x1000), 99u);

  Parent.write64(0x1008, 7);
  EXPECT_EQ(Child.read64(0x1008), 0u) << "parent write leaked to child";
}

/// Counts COW events for the fault-charging tests.
struct CountingListener : MemoryEventListener {
  unsigned Cows = 0;
  unsigned Allocs = 0;
  void onCowCopy(uint64_t) override { ++Cows; }
  void onPageAlloc(uint64_t) override { ++Allocs; }
};

TEST(GuestMemory, CowFaultFiresOncePerPage) {
  GuestMemory Parent;
  Parent.write64(0x1000, 1);
  Parent.write64(0x2000, 2);
  GuestMemory Child = Parent.fork();
  CountingListener Listener;
  Child.setListener(&Listener);
  Child.write64(0x1000, 10);
  Child.write64(0x1008, 11); // same page: no second fault
  Child.write64(0x2000, 20);
  EXPECT_EQ(Listener.Cows, 2u);
  Child.write64(0x9000, 1); // unmapped: alloc, not COW
  EXPECT_EQ(Listener.Allocs, 1u);
}

TEST(GuestMemory, ForkIsolationFuzz) {
  // Property: random interleaved writes after fork never leak across.
  SplitMix64 Rng(123);
  GuestMemory A;
  for (int I = 0; I != 200; ++I)
    A.write64(Rng.nextBelow(1 << 20) & ~7ull, Rng.next());
  GuestMemory B = A.fork();
  // Snapshot some addresses.
  std::vector<uint64_t> Addrs, ValsA;
  for (int I = 0; I != 100; ++I) {
    uint64_t Addr = Rng.nextBelow(1 << 20) & ~7ull;
    Addrs.push_back(Addr);
    ValsA.push_back(A.read64(Addr));
  }
  // Mutate B heavily.
  for (int I = 0; I != 500; ++I)
    B.write64(Rng.nextBelow(1 << 20) & ~7ull, Rng.next());
  for (size_t I = 0; I != Addrs.size(); ++I)
    EXPECT_EQ(A.read64(Addrs[I]), ValsA[I]);
}

TEST(GuestMemory, DiscardRangeDropsWholePagesZeroesPartial) {
  GuestMemory M;
  M.write64(0x1000, 1);
  M.write64(0x2000, 2);
  M.write64(0x2800, 3);
  M.discardRange(0x1000, PageSize); // whole page
  EXPECT_EQ(M.numPages(), 1u);
  M.discardRange(0x2800, 8); // partial: zero without dropping
  EXPECT_EQ(M.read64(0x2000), 2u);
  EXPECT_EQ(M.read64(0x2800), 0u);
}

// --- Assembler / Disassembler -----------------------------------------

TEST(Assembler, RejectsErrorsWithLineNumbers) {
  std::string Err;
  EXPECT_FALSE(assemble("main:\n  bogus r1\n", "t", Err));
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
  EXPECT_FALSE(assemble("main:\n  movi r99, 1\n", "t", Err));
  EXPECT_FALSE(assemble("main:\n  jmp nowhere\n", "t", Err));
  EXPECT_NE(Err.find("nowhere"), std::string::npos) << Err;
  EXPECT_FALSE(assemble("x: x:\n  nop\n", "t", Err)); // redefinition
  EXPECT_FALSE(assemble("", "t", Err)); // empty program
}

TEST(Assembler, LabelsAndData) {
  Program P = mustAssemble(R"(
main:
  movi r1, buf
  movi r2, vals
  jmp main
.data
buf:  .space 16
vals: .word64 7, -1
msg:  .asciiz "hi\n"
)",
                           "t");
  uint64_t Buf = P.symbol("buf");
  uint64_t Vals = P.symbol("vals");
  EXPECT_EQ(Buf, AddressLayout::DataBase);
  EXPECT_EQ(Vals, Buf + 16);
  EXPECT_EQ(P.Text[0].Imm, static_cast<int64_t>(Buf));
  // .word64 7, -1 little-endian.
  EXPECT_EQ(P.DataInit[16], 7);
  EXPECT_EQ(P.DataInit[24], 0xff);
  // .asciiz appends NUL.
  EXPECT_EQ(P.DataInit[32], 'h');
  EXPECT_EQ(P.DataInit[34], '\n');
  EXPECT_EQ(P.DataInit[35], 0);
}

TEST(Assembler, EntryPointDefaultsAndMain) {
  Program P1 = mustAssemble("start:\n  nop\nmain:\n  nop\n", "t");
  EXPECT_EQ(P1.EntryPc, P1.symbol("main"));
  Program P2 = mustAssemble("  nop\n", "t");
  EXPECT_EQ(P2.EntryPc, AddressLayout::TextBase);
}

TEST(Disassembler, RoundTripsThroughAssembler) {
  // Every opcode appears; disassemble then re-assemble and compare.
  Program P = mustAssemble(R"(
main:
  nop
  mov r1, r2
  movi r3, -17
  add r1, r2, r3
  divu r4, r5, r6
  sar r7, r8, r9
  sltu r1, r2, r3
  addi r1, r2, 100
  slti r4, r5, -3
  ld8u r1, [r2+4]
  ld64 r3, [sp-8]
  st32 [r4+12], r5
  incm [r6+0]
  push r7
  pop r8
  jr r9
  beq r1, r2, main
  bgeu r3, r4, main
  call main
  callr r5
  ret
  syscall
  jmp main
)",
                           "t");
  std::string Text;
  for (const Instruction &I : P.Text) {
    Text += "  " + disassemble(I) + "\n";
  }
  Program P2 = mustAssemble("main:\n" + Text, "t2");
  ASSERT_EQ(P.Text.size(), P2.Text.size());
  for (size_t I = 0; I != P.Text.size(); ++I) {
    EXPECT_EQ(P.Text[I].Op, P2.Text[I].Op) << "at " << I;
    EXPECT_EQ(P.Text[I].A, P2.Text[I].A) << "at " << I;
    EXPECT_EQ(P.Text[I].B, P2.Text[I].B) << "at " << I;
    EXPECT_EQ(P.Text[I].C, P2.Text[I].C) << "at " << I;
    EXPECT_EQ(P.Text[I].Imm, P2.Text[I].Imm) << "at " << I;
  }
}

// --- Interpreter semantics ---------------------------------------------

/// Runs a fragment with r1/r2 preset and returns the CPU state when it
/// reaches the trailing syscall. \p Data is appended as a .data section.
static CpuState runFragment(const std::string &Body, uint64_t R1 = 0,
                            uint64_t R2 = 0, const std::string &Data = "") {
  std::string Src = "main:\n" + Body + "\n  movi r0, 0\n  syscall\n";
  if (!Data.empty())
    Src += ".data\n" + Data;
  Program P = mustAssemble(Src, "frag");
  GuestMemory M;
  P.loadDataInto(M);
  CpuState S;
  S.Pc = P.EntryPc;
  S.setSp(AddressLayout::StackTop - 256);
  S.Regs[1] = R1;
  S.Regs[2] = R2;
  Interpreter I(P, S, M);
  RunResult R = I.run(100000);
  EXPECT_EQ(R.Reason, StopReason::Syscall);
  return S;
}

TEST(Interpreter, AluBasics) {
  EXPECT_EQ(runFragment("  add r3, r1, r2", 5, 7).Regs[3], 12u);
  EXPECT_EQ(runFragment("  sub r3, r1, r2", 5, 7).Regs[3],
            static_cast<uint64_t>(-2));
  EXPECT_EQ(runFragment("  mul r3, r1, r2", 5, 7).Regs[3], 35u);
  EXPECT_EQ(runFragment("  divu r3, r1, r2", 40, 8).Regs[3], 5u);
  EXPECT_EQ(runFragment("  remu r3, r1, r2", 43, 8).Regs[3], 3u);
  EXPECT_EQ(runFragment("  and r3, r1, r2", 0xf0f, 0xff).Regs[3], 0xfu);
  EXPECT_EQ(runFragment("  or r3, r1, r2", 0xf00, 0xff).Regs[3], 0xfffu);
  EXPECT_EQ(runFragment("  xor r3, r1, r2", 0xff, 0x0f).Regs[3], 0xf0u);
  EXPECT_EQ(runFragment("  shl r3, r1, r2", 3, 4).Regs[3], 48u);
  EXPECT_EQ(runFragment("  shr r3, r1, r2", 48, 4).Regs[3], 3u);
}

TEST(Interpreter, DivisionByZeroFollowsRiscV) {
  EXPECT_EQ(runFragment("  divu r3, r1, r2", 40, 0).Regs[3], ~uint64_t(0));
  EXPECT_EQ(runFragment("  remu r3, r1, r2", 40, 0).Regs[3], 40u);
}

TEST(Interpreter, SarIsArithmetic) {
  CpuState S = runFragment("  sar r3, r1, r2", static_cast<uint64_t>(-16), 2);
  EXPECT_EQ(static_cast<int64_t>(S.Regs[3]), -4);
}

TEST(Interpreter, SltSigned) {
  EXPECT_EQ(runFragment("  slt r3, r1, r2", static_cast<uint64_t>(-1), 1)
                .Regs[3],
            1u);
  EXPECT_EQ(runFragment("  sltu r3, r1, r2", static_cast<uint64_t>(-1), 1)
                .Regs[3],
            0u);
  EXPECT_EQ(runFragment("  slti r3, r1, -5", static_cast<uint64_t>(-10), 0)
                .Regs[3],
            1u);
}

TEST(Interpreter, ShiftAmountsMaskTo63) {
  EXPECT_EQ(runFragment("  shl r3, r1, r2", 1, 64).Regs[3], 1u);
  EXPECT_EQ(runFragment("  shli r3, r1, 65", 2, 0).Regs[3], 4u);
}

TEST(Interpreter, LoadStoreWidths) {
  CpuState S = runFragment(R"(
  movi r4, buf
  movi r5, -1
  st64 [r4+0], r5
  ld8u r6, [r4+0]
  ld16u r7, [r4+0]
  ld32u r8, [r4+0]
)",
                           0, 0, "buf: .space 8\n");
  EXPECT_EQ(S.Regs[6], 0xffu);
  EXPECT_EQ(S.Regs[7], 0xffffu);
  EXPECT_EQ(S.Regs[8], 0xffffffffu);
}

TEST(Interpreter, PushPopCallRet) {
  CpuState S = runFragment(R"(
  movi r3, 5
  push r3
  movi r3, 0
  pop r4
  call fn
  jmp after
fn:
  movi r5, 77
  ret
after:
  nop
)");
  EXPECT_EQ(S.Regs[4], 5u);
  EXPECT_EQ(S.Regs[5], 77u);
  EXPECT_EQ(S.sp(), AddressLayout::StackTop - 256);
}

TEST(Interpreter, IncmIncrementsMemory) {
  CpuState S = runFragment(R"(
  movi r4, ctr
  incm [r4+0]
  incm [r4+0]
  incm [r4+0]
  ld64 r5, [r4+0]
)",
                           0, 0, "ctr: .word64 39\n");
  EXPECT_EQ(S.Regs[5], 42u);
}

TEST(Interpreter, CountdownRunsExactInstructionCount) {
  Program P = makeCountdown(10);
  os::DirectRunResult R = os::runDirect(P);
  EXPECT_TRUE(R.Exited);
  EXPECT_EQ(R.ExitCode, 0);
  // 3 setup + 10 iterations x 4 + 2 exit-setup + 1 exit syscall.
  EXPECT_EQ(R.Insts, 3 + 4 * 10 + 2 + 1u);
}

TEST(Interpreter, BudgetStopsAndResumes) {
  Program P = makeCountdown(100);
  GuestMemory M;
  P.loadDataInto(M);
  CpuState S;
  S.Pc = P.EntryPc;
  S.setSp(AddressLayout::StackTop - 256);
  Interpreter I(P, S, M);
  uint64_t Total = 0;
  while (true) {
    RunResult R = I.run(7);
    Total += R.InstsExecuted;
    if (R.Reason == StopReason::Syscall)
      break;
    ASSERT_EQ(R.Reason, StopReason::Budget);
  }
  EXPECT_EQ(Total, I.instructionsRetired());
  EXPECT_EQ(Total, 3 + 4 * 100 + 2u); // stopped at the syscall
}

TEST(Exec, WouldBranchMatchesExecution) {
  // Property: wouldBranch agrees with executeInstruction's BranchTaken for
  // random register contents across all branch opcodes.
  SplitMix64 Rng(7);
  GuestMemory M;
  for (Opcode Op : {Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bge,
                    Opcode::Bltu, Opcode::Bgeu}) {
    for (int Trial = 0; Trial != 200; ++Trial) {
      Instruction I;
      I.Op = Op;
      I.A = 1;
      I.B = 2;
      I.Imm = static_cast<int64_t>(AddressLayout::TextBase);
      CpuState S;
      // Mix small and extreme values to hit signed/unsigned edges.
      S.Regs[1] = Trial % 3 ? Rng.next() : Rng.nextBelow(4);
      S.Regs[2] = Trial % 5 ? Rng.next() : S.Regs[1];
      bool Predicted = wouldBranch(I, S);
      ExecInfo Info;
      executeInstruction(I, AddressLayout::TextBase + 400, S, M, Info);
      EXPECT_EQ(Predicted, Info.BranchTaken);
    }
  }
}

// --- ProgramBuilder ----------------------------------------------------

TEST(ProgramBuilder, EmitsRunnableProgram) {
  ProgramBuilder B("built");
  uint64_t Data = B.allocData(64);
  B.initData64(Data, 5);
  B.defineSymbol("main");
  B.movi(Reg{1}, static_cast<int64_t>(Data));
  B.ld64(Reg{2}, Reg{1}, 0);
  ProgramBuilder::LabelId Loop = B.createLabel();
  B.bind(Loop);
  B.addi(Reg{2}, Reg{2}, -1);
  B.movi(Reg{3}, 0);
  B.bne(Reg{2}, Reg{3}, Loop);
  B.movi(Reg{0}, 0);
  B.movi(Reg{1}, 0);
  B.syscall();
  Program P = B.take();
  os::DirectRunResult R = os::runDirect(P);
  EXPECT_TRUE(R.Exited);
  // 2 setup + 5 iterations * 3 + 2 + syscall.
  EXPECT_EQ(R.Insts, 2 + 5 * 3 + 2 + 1u);
}

} // namespace

// --- Verifier (appended suite) ------------------------------------------

#include "vm/Verifier.h"
#include "workloads/Spec2000.h"

namespace {

TEST(Verifier, AcceptsWellFormedPrograms) {
  EXPECT_TRUE(verifyProgram(makeCountdown(5)).empty());
  EXPECT_TRUE(verifyProgram(makeMemCounterLoop(10)).empty());
}

TEST(Verifier, AcceptsEveryGeneratedWorkload) {
  for (const auto &Info : workloads::spec2000Suite()) {
    Program Prog = workloads::buildWorkload(Info, 0.01);
    std::vector<VerifyIssue> Issues = verifyProgram(Prog);
    EXPECT_TRUE(Issues.empty())
        << Info.Name << ": "
        << (Issues.empty() ? std::string()
                           : formatVerifyIssue(Prog, Issues[0]));
  }
}

TEST(Verifier, RejectsBadBranchTarget) {
  Program P = makeCountdown(5);
  P.Text[6].Imm = 12345; // the loop bne: misaligned, pre-text target
  ASSERT_EQ(P.Text[6].Op, Opcode::Bne);
  std::vector<VerifyIssue> Issues = verifyProgram(P);
  ASSERT_FALSE(Issues.empty());
  EXPECT_NE(Issues[0].Message.find("target"), std::string::npos);
}

TEST(Verifier, RejectsBadRegister) {
  Program P = makeCountdown(5);
  P.Text[0].A = 99;
  EXPECT_FALSE(verifyProgram(P).empty());
}

TEST(Verifier, RejectsFallOffEnd) {
  Program P = mustAssemble("main:\n  addi r1, r1, 1\n", "bad");
  std::vector<VerifyIssue> Issues = verifyProgram(P);
  ASSERT_FALSE(Issues.empty());
  EXPECT_NE(Issues[0].Message.find("past the end"), std::string::npos);
}

TEST(Verifier, RejectsHalt) {
  Program P = mustAssemble("main:\n  halt\n", "bad");
  ASSERT_FALSE(verifyProgram(P).empty());
}

TEST(Exec, BranchTargetOfMatchesExecution) {
  // Property: for control-flow instructions that are taken, the
  // pre-computed target equals the post-execution pc.
  Program P = mustAssemble(R"(
main:
  call fn
  jmp main
fn:
  ret
)",
                           "t");
  GuestMemory M;
  CpuState S;
  S.Pc = P.EntryPc;
  S.setSp(AddressLayout::StackTop - 256);
  for (int Step = 0; Step != 20; ++Step) {
    const Instruction *I = P.fetch(S.Pc);
    ASSERT_NE(I, nullptr);
    uint64_t Predicted = branchTargetOf(*I, S.Pc, S, M);
    ExecInfo Info;
    executeInstruction(*I, S.Pc, S, M, Info);
    if (Info.BranchTaken) {
      EXPECT_EQ(S.Pc, Predicted);
    }
  }
}

} // namespace
