//===- tests/threads_test.cpp - Guest-thread (§8) tests -------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The paper's Section 8 future work, implemented: multithreaded guests
// under a deterministic round-robin schedule that SuperPin slices replay
// exactly. Thread lifecycle syscalls are force-slice boundaries, so each
// window covers a fixed thread population.
//
// Guest spin-waits deliberately vary a register per iteration: a spin
// loop with fully repeating state is the §4.4 false-positive case (the
// documented signature limitation applies to threads too).
//
//===----------------------------------------------------------------------===//

#include "os/DirectRun.h"
#include "os/Process.h"
#include "pin/Runner.h"
#include "superpin/Engine.h"
#include "tools/Icount.h"
#include "tools/MemTrace.h"

#include "TestPrograms.h"

#include "gtest/gtest.h"

using namespace spin;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::test;
using namespace spin::tools;
using namespace spin::vm;

namespace {

/// Main thread and one worker increment separate cells; the worker sets a
/// done-flag that the main thread spin-waits on (with a varying spin
/// counter in r8), then main writes both cells and exits.
Program twoThreadProgram(unsigned MainIters, unsigned WorkerIters) {
  std::string Src = R"(
main:
  movi r10, 0
  movi r0, 4            ; mmap_anon(65536) -> worker stack
  movi r1, 65536
  syscall
  addi r2, r0, 65536
  movi r1, worker
  movi r0, 11           ; thread_create(worker, stack)
  syscall
  movi r4, cella
  movi r5, )" + std::to_string(MainIters) + R"(
mloop:
  incm [r4+0]
  addi r5, r5, -1
  bne r5, r10, mloop
  movi r6, flag
wait:
  addi r8, r8, 1        ; varying spin counter (see file header)
  ld64 r7, [r6+0]
  beq r7, r10, wait
  movi r0, 1            ; write(1, cella, 16): both counters
  movi r1, 1
  movi r2, cella
  movi r3, 16
  syscall
  movi r0, 0            ; exit(0)
  movi r1, 0
  syscall

worker:
  movi r4, cellb
  movi r5, )" + std::to_string(WorkerIters) + R"(
wloop:
  incm [r4+0]
  addi r5, r5, -1
  bne r5, r10, wloop
  movi r7, 1
  movi r6, flag
  st64 [r6+0], r7
  movi r0, 12           ; thread_exit()
  syscall

.data
cella: .word64 0
cellb: .word64 0
flag:  .word64 0
)";
  return mustAssemble(Src, "twothread");
}

/// Reads a little-endian u64 out of program output.
uint64_t outputWord(const std::string &Out, size_t Index) {
  uint64_t V = 0;
  for (unsigned B = 0; B != 8; ++B)
    V |= uint64_t(uint8_t(Out[Index * 8 + B])) << (8 * B);
  return V;
}

TEST(Threads, KernelSpawnAndExit) {
  Process Proc = Process::create(makeCountdown(5));
  EXPECT_FALSE(Proc.isMultiThreaded());
  uint64_t Tid = Proc.spawnThread(Proc.program().EntryPc, 0x1000);
  EXPECT_EQ(Tid, 1u);
  EXPECT_TRUE(Proc.isMultiThreaded());
  EXPECT_EQ(Proc.numLiveThreads(), 2u);
  // Rotate explicitly, then exit the worker.
  Proc.rotateThread();
  EXPECT_EQ(Proc.currentThread(), 1u);
  EXPECT_EQ(Proc.Cpu.Pc, Proc.program().EntryPc);
  EXPECT_EQ(Proc.Cpu.sp(), 0x1000u);
  Proc.exitCurrentThread();
  EXPECT_EQ(Proc.numLiveThreads(), 1u);
  EXPECT_EQ(Proc.currentThread(), 0u);
  EXPECT_EQ(Proc.Status, ProcStatus::Running);
}

TEST(Threads, QuantumRotatesRoundRobin) {
  Process Proc = Process::create(makeCountdown(5));
  Proc.spawnThread(Proc.program().EntryPc, 0x1000);
  Proc.spawnThread(Proc.program().EntryPc, 0x2000);
  EXPECT_EQ(Proc.currentThread(), 0u);
  Proc.noteRetired(Process::ThreadQuantum - 1);
  EXPECT_FALSE(Proc.quantumExpired());
  Proc.noteRetired(1);
  EXPECT_TRUE(Proc.quantumExpired()); // executor rotates at block end
  Proc.rotateThread();
  EXPECT_EQ(Proc.currentThread(), 1u);
  EXPECT_FALSE(Proc.quantumExpired()); // fresh quantum after rotation
  Proc.noteRetired(Process::ThreadQuantum);
  Proc.rotateThread();
  EXPECT_EQ(Proc.currentThread(), 2u);
  Proc.noteRetired(Process::ThreadQuantum);
  Proc.rotateThread();
  EXPECT_EQ(Proc.currentThread(), 0u); // wrapped around
}

TEST(Threads, ForkCarriesThreadState) {
  Process Proc = Process::create(makeCountdown(5));
  Proc.spawnThread(Proc.program().EntryPc, 0x1000);
  Proc.noteRetired(100);
  Process Child = Proc.fork(2);
  EXPECT_EQ(Child.numLiveThreads(), 2u);
  EXPECT_EQ(Child.currentThread(), Proc.currentThread());
  EXPECT_EQ(Child.quantumLeft(), Proc.quantumLeft());
  EXPECT_EQ(Child.threadPcs(), Proc.threadPcs());
}

TEST(Threads, NativeRunsBothThreadsToCompletion) {
  Program Prog = twoThreadProgram(30'000, 50'000);
  DirectRunResult R = runDirect(Prog);
  ASSERT_TRUE(R.Exited);
  ASSERT_EQ(R.Output.size(), 16u);
  EXPECT_EQ(outputWord(R.Output, 0), 30'000u) << "main counter";
  EXPECT_EQ(outputWord(R.Output, 1), 50'000u) << "worker counter";
}

TEST(Threads, DeterministicInterleaving) {
  Program Prog = twoThreadProgram(20'000, 20'000);
  DirectRunResult A = runDirect(Prog);
  DirectRunResult B = runDirect(Prog);
  EXPECT_EQ(A.Insts, B.Insts);
  EXPECT_EQ(A.Output, B.Output);
}

TEST(Threads, SerialPinMatchesNative) {
  Program Prog = twoThreadProgram(20'000, 30'000);
  DirectRunResult Native = runDirect(Prog);
  CostModel Model;
  auto Count = std::make_shared<IcountResult>();
  RunReport Rep = runSerialPin(
      Prog, Model, 100,
      makeIcountTool(IcountGranularity::Instruction, Count));
  EXPECT_EQ(Count->Total, Native.Insts)
      << "instrumented threading must retire the same stream";
  EXPECT_EQ(Rep.Output, Native.Output);
}

TEST(Threads, SuperPinSlicesReplayTheInterleaving) {
  Program Prog = twoThreadProgram(40'000, 60'000);
  DirectRunResult Native = runDirect(Prog);
  CostModel Model;
  sp::SpOptions Opts;
  Opts.SliceMs = 30;
  auto Count = std::make_shared<IcountResult>();
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, Count), Opts,
      Model);
  EXPECT_EQ(Count->Total, Native.Insts);
  EXPECT_EQ(Rep.Output, Native.Output);
  EXPECT_TRUE(Rep.PartitionOk);
  EXPECT_GT(Rep.NumSlices, 2u);
  // thread_create and thread_exit are force-slice boundaries.
  EXPECT_GE(Rep.ForcedSliceSyscalls, 2u);
}

TEST(Threads, MemTraceIdenticalAcrossModes) {
  // The strongest interleaving witness: the global memory-reference order
  // of both threads must match between serial Pin and SuperPin.
  Program Prog = twoThreadProgram(8'000, 12'000);
  CostModel Model;
  auto Serial = std::make_shared<MemTraceResult>();
  runSerialPin(Prog, Model, 100, makeMemTraceTool(Serial));
  sp::SpOptions Opts;
  Opts.SliceMs = 15;
  auto Sp = std::make_shared<MemTraceResult>();
  sp::SpRunReport Rep =
      sp::runSuperPin(Prog, makeMemTraceTool(Sp), Opts, Model);
  ASSERT_GT(Rep.NumSlices, 2u);
  ASSERT_FALSE(Serial->Records.empty());
  EXPECT_TRUE(Serial->Records == Sp->Records)
      << "slice replay must reproduce the exact thread interleaving";
}

TEST(Threads, IcountTwoGranularitiesAgree) {
  Program Prog = twoThreadProgram(15'000, 25'000);
  CostModel Model;
  sp::SpOptions Opts;
  Opts.SliceMs = 25;
  auto R1 = std::make_shared<IcountResult>();
  auto R2 = std::make_shared<IcountResult>();
  sp::runSuperPin(Prog, makeIcountTool(IcountGranularity::Instruction, R1),
                  Opts, Model);
  sp::runSuperPin(Prog, makeIcountTool(IcountGranularity::BasicBlock, R2),
                  Opts, Model);
  EXPECT_EQ(R1->Total, R2->Total);
}

class ThreadSliceSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSliceSweep, CountsPreservedAcrossSliceSizes) {
  Program Prog = twoThreadProgram(25'000, 35'000);
  DirectRunResult Native = runDirect(Prog);
  sp::SpOptions Opts;
  Opts.SliceMs = static_cast<uint64_t>(GetParam());
  auto Count = std::make_shared<IcountResult>();
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, Count), Opts,
      CostModel());
  EXPECT_EQ(Count->Total, Native.Insts);
  EXPECT_TRUE(Rep.PartitionOk);
  EXPECT_EQ(Rep.Output, Native.Output);
}

INSTANTIATE_TEST_SUITE_P(SliceSizes, ThreadSliceSweep,
                         ::testing::Values(7, 13, 29, 61, 200));

} // namespace

// --- Threaded tools (appended suite) ----------------------------------------

#include "tools/CallGraph.h"
#include "tools/Syscount.h"

namespace {

TEST(Threads, CallGraphUsesPerThreadStacks) {
  // Both threads call functions; the per-thread shadow stacks must keep
  // caller attribution consistent between serial Pin and SuperPin
  // (per-callee totals exact, as in the single-threaded contract).
  std::string Src = R"(
main:
  movi r10, 0
  movi r0, 4
  movi r1, 65536
  syscall
  addi r2, r0, 65536
  movi r1, tworker
  movi r0, 11
  syscall
  movi r5, 4000
mcall:
  call funca
  addi r5, r5, -1
  bne r5, r10, mcall
  movi r6, flag
mwait:
  addi r8, r8, 1
  ld64 r7, [r6+0]
  beq r7, r10, mwait
  movi r0, 0
  movi r1, 0
  syscall
funca:
  addi r3, r3, 7
  ret
funcb:
  addi r3, r3, 11
  ret
tworker:
  movi r5, 6000
wcall:
  call funcb
  addi r5, r5, -1
  bne r5, r10, wcall
  movi r7, 1
  movi r6, flag
  st64 [r6+0], r7
  movi r0, 12
  syscall
.data
flag: .word64 0
)";
  Program Prog = mustAssemble(Src, "mtcalls");
  CostModel Model;
  auto Serial = std::make_shared<CallGraphResult>();
  runSerialPin(Prog, Model, 100, makeCallGraphTool(Serial));
  EXPECT_EQ(Serial->TotalCalls, 10'000u);
  EXPECT_EQ(Serial->unknownCallerCalls(), 0u);

  sp::SpOptions Opts;
  Opts.SliceMs = 10;
  auto Sp = std::make_shared<CallGraphResult>();
  sp::SpRunReport Rep =
      sp::runSuperPin(Prog, makeCallGraphTool(Sp), Opts, Model);
  ASSERT_GT(Rep.NumSlices, 2u);
  EXPECT_EQ(Sp->TotalCalls, 10'000u);
  std::map<uint64_t, uint64_t> SerialPerCallee, SpPerCallee;
  for (const auto &[Edge, Count] : Serial->Edges)
    SerialPerCallee[Edge.second] += Count;
  for (const auto &[Edge, Count] : Sp->Edges)
    SpPerCallee[Edge.second] += Count;
  EXPECT_EQ(SerialPerCallee, SpPerCallee);
}

TEST(Threads, SyscountSeesThreadSyscalls) {
  Program Prog = twoThreadProgram(10'000, 15'000);
  CostModel Model;
  auto Serial = std::make_shared<SyscountResult>();
  runSerialPin(Prog, Model, 100, makeSyscountTool(Serial));
  sp::SpOptions Opts;
  Opts.SliceMs = 20;
  auto Sp = std::make_shared<SyscountResult>();
  sp::runSuperPin(Prog, makeSyscountTool(Sp), Opts, Model);
  EXPECT_EQ(Serial->CountByNumber, Sp->CountByNumber);
  EXPECT_EQ(Sp->CountByNumber[11], 1u); // thread_create
  EXPECT_EQ(Sp->CountByNumber[12], 1u); // thread_exit
}

} // namespace

// --- Threaded configuration sweep (appended suite) ---------------------------

namespace {

struct MtConfigCase {
  const char *Label;
  void (*Apply)(sp::SpOptions &);
};

class MtConfigSweep : public ::testing::TestWithParam<MtConfigCase> {};

TEST_P(MtConfigSweep, OptionsNeverChangeThreadedResults) {
  Program Prog = twoThreadProgram(18'000, 26'000);
  DirectRunResult Native = runDirect(Prog);
  sp::SpOptions Opts;
  Opts.SliceMs = 20;
  GetParam().Apply(Opts);
  auto Count = std::make_shared<IcountResult>();
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, Count), Opts,
      CostModel());
  EXPECT_EQ(Count->Total, Native.Insts) << GetParam().Label;
  EXPECT_TRUE(Rep.PartitionOk) << GetParam().Label;
  EXPECT_EQ(Rep.Output, Native.Output) << GetParam().Label;
}

INSTANTIATE_TEST_SUITE_P(
    Options, MtConfigSweep,
    ::testing::Values(
        MtConfigCase{"memsig",
                     [](sp::SpOptions &O) { O.MemSignature = true; }},
        MtConfigCase{"noquick",
                     [](sp::SpOptions &O) { O.QuickCheck = false; }},
        MtConfigCase{"sharedcc",
                     [](sp::SpOptions &O) { O.SharedCodeCache = true; }},
        MtConfigCase{"mp1", [](sp::SpOptions &O) { O.MaxSlices = 1; }},
        MtConfigCase{"cpus2",
                     [](sp::SpOptions &O) {
                       O.PhysCpus = 2;
                       O.VirtCpus = 2;
                     }},
        MtConfigCase{"adaptive",
                     [](sp::SpOptions &O) {
                       O.AdaptiveSlices = true;
                       O.AppDurationHintMs = 200;
                       O.MinSliceMs = 5;
                     }}),
    [](const ::testing::TestParamInfo<MtConfigCase> &I) {
      return std::string(I.param.Label);
    });

} // namespace
