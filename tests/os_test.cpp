//===- tests/os_test.cpp - Kernel, process, scheduler tests ---------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "os/DirectRun.h"
#include "os/Kernel.h"
#include "os/Process.h"
#include "os/Scheduler.h"
#include "os/Syscalls.h"

#include "TestPrograms.h"
#include "vm/Interpreter.h"

#include "gtest/gtest.h"

using namespace spin;
using namespace spin::os;
using namespace spin::test;
using namespace spin::vm;

namespace {

/// Builds a process stopped at its first syscall with the given registers.
struct SyscallFixture {
  Program Prog;
  Process Proc;

  explicit SyscallFixture(std::string_view Body)
      : Prog(mustAssemble(std::string("main:\n") + std::string(Body) +
                              "\n  syscall\n  syscall\n  syscall\n  syscall\n"
                              "  syscall\n  syscall\n  syscall\n  syscall\n",
                          "sysfix")),
        Proc(Process::create(Prog)) {
    runToSyscall();
  }

  void runToSyscall() {
    Interpreter I(Prog, Proc.Cpu, Proc.Mem);
    RunResult R = I.run(100000);
    ASSERT_EQ(R.Reason, StopReason::Syscall);
  }
};

TEST(Kernel, Classification) {
  EXPECT_EQ(classifySyscall(uint64_t(Sys::Exit)), SyscallClass::Exit);
  EXPECT_EQ(classifySyscall(uint64_t(Sys::Brk)), SyscallClass::Duplicable);
  EXPECT_EQ(classifySyscall(uint64_t(Sys::MmapAnon)),
            SyscallClass::Duplicable);
  EXPECT_EQ(classifySyscall(uint64_t(Sys::Rand)), SyscallClass::Duplicable);
  EXPECT_EQ(classifySyscall(uint64_t(Sys::Read)), SyscallClass::Replayable);
  EXPECT_EQ(classifySyscall(uint64_t(Sys::Write)), SyscallClass::Replayable);
  EXPECT_EQ(classifySyscall(uint64_t(Sys::GetTimeMs)),
            SyscallClass::Replayable);
  EXPECT_EQ(classifySyscall(uint64_t(Sys::Open)), SyscallClass::ForceSlice);
  // Unknown syscalls take the conservative default (paper Section 4.2).
  EXPECT_EQ(classifySyscall(999), SyscallClass::ForceSlice);
  EXPECT_EQ(getSyscallName(uint64_t(Sys::Brk)), "brk");
  EXPECT_EQ(getSyscallName(999), "unknown");
}

TEST(Kernel, BrkQueryAndSet) {
  SyscallFixture F("  movi r0, 3\n  movi r1, 0");
  SystemContext Ctx;
  serviceSyscall(F.Proc, Ctx, nullptr);
  EXPECT_EQ(F.Proc.Cpu.Regs[0], AddressLayout::HeapBase); // query
  // Grow.
  F.Proc.Cpu.Regs[0] = uint64_t(Sys::Brk);
  F.Proc.Cpu.Regs[1] = AddressLayout::HeapBase + 0x10000;
  serviceSyscall(F.Proc, Ctx, nullptr);
  EXPECT_EQ(F.Proc.Cpu.Regs[0], AddressLayout::HeapBase + 0x10000);
  EXPECT_EQ(F.Proc.Kern.Brk, AddressLayout::HeapBase + 0x10000);
}

TEST(Kernel, MmapIsDeterministicPerProcessState) {
  SyscallFixture F("  movi r0, 4\n  movi r1, 8192");
  SystemContext Ctx;
  serviceSyscall(F.Proc, Ctx, nullptr);
  uint64_t First = F.Proc.Cpu.Regs[0];
  EXPECT_EQ(First, AddressLayout::MmapBase);
  F.Proc.Cpu.Regs[0] = uint64_t(Sys::MmapAnon);
  F.Proc.Cpu.Regs[1] = 4096;
  serviceSyscall(F.Proc, Ctx, nullptr);
  EXPECT_EQ(F.Proc.Cpu.Regs[0], First + 8192);
}

TEST(Kernel, DuplicableSyscallsAgreeAfterFork) {
  // The §4.2 "duplicable" premise: a forked process re-executing the same
  // duplicable syscall sequence gets identical results.
  SyscallFixture F("  movi r0, 8"); // rand
  Process Child = F.Proc.fork(2);
  SystemContext Ctx;
  serviceSyscall(F.Proc, Ctx, nullptr);
  serviceSyscall(Child, Ctx, nullptr);
  EXPECT_EQ(F.Proc.Cpu.Regs[0], Child.Cpu.Regs[0]);
  EXPECT_EQ(F.Proc.Kern.RngState, Child.Kern.RngState);
}

TEST(Kernel, OpenReadDeterministicContent) {
  // 67108864 == AddressLayout::DataBase.
  SyscallFixture F("  movi r1, 67108864\n  movi r0, 9");
  F.Proc.Mem.writeBytes(AddressLayout::DataBase, "f1", 3);
  SystemContext Ctx;
  serviceSyscall(F.Proc, Ctx, nullptr); // open -> fd
  uint64_t Fd = F.Proc.Cpu.Regs[0];
  ASSERT_GE(Fd, 3u);

  // Two sequential reads return different content (offset advances)...
  auto ReadAt = [&](uint64_t Buf) {
    F.Proc.Cpu.Regs[0] = uint64_t(Sys::Read);
    F.Proc.Cpu.Regs[1] = Fd;
    F.Proc.Cpu.Regs[2] = Buf;
    F.Proc.Cpu.Regs[3] = 16;
    serviceSyscall(F.Proc, Ctx, nullptr);
    return F.Proc.Cpu.Regs[0];
  };
  uint64_t Buf = AddressLayout::DataBase + 0x100;
  EXPECT_EQ(ReadAt(Buf), 16u);
  uint64_t First = F.Proc.Mem.read64(Buf);
  EXPECT_EQ(ReadAt(Buf + 32), 16u);
  uint64_t Second = F.Proc.Mem.read64(Buf + 32);
  EXPECT_NE(First, Second);

  // ...but reopening the same path restarts the deterministic stream.
  F.Proc.Cpu.Regs[0] = uint64_t(Sys::Open);
  F.Proc.Cpu.Regs[1] = AddressLayout::DataBase;
  serviceSyscall(F.Proc, Ctx, nullptr);
  uint64_t Fd2 = F.Proc.Cpu.Regs[0];
  F.Proc.Cpu.Regs[0] = uint64_t(Sys::Read);
  F.Proc.Cpu.Regs[1] = Fd2;
  F.Proc.Cpu.Regs[2] = Buf + 64;
  F.Proc.Cpu.Regs[3] = 16;
  serviceSyscall(F.Proc, Ctx, nullptr);
  EXPECT_EQ(F.Proc.Mem.read64(Buf + 64), First);
}

TEST(Kernel, WriteRespectsSuppression) {
  // 67108864 == AddressLayout::DataBase.
  SyscallFixture F("  movi r2, 67108864\n  movi r0, 1\n"
                   "  movi r1, 1\n  movi r3, 5");
  F.Proc.Mem.writeBytes(AddressLayout::DataBase, "hello", 5);
  std::string Out;
  SystemContext Ctx;
  Ctx.OutputBuf = &Out;
  serviceSyscall(F.Proc, Ctx, nullptr);
  EXPECT_EQ(Out, "hello");
  EXPECT_EQ(F.Proc.Cpu.Regs[0], 5u);

  // Suppressed (slice mode): same return value, no output.
  F.Proc.Cpu.Regs[0] = uint64_t(Sys::Write);
  F.Proc.Cpu.Regs[1] = 1;
  F.Proc.Cpu.Regs[2] = AddressLayout::DataBase;
  F.Proc.Cpu.Regs[3] = 5;
  Ctx.SuppressOutput = true;
  serviceSyscall(F.Proc, Ctx, nullptr);
  EXPECT_EQ(Out, "hello");
  EXPECT_EQ(F.Proc.Cpu.Regs[0], 5u);
}

TEST(Kernel, RecordPlaybackReproducesState) {
  // Record a read on one process; play it back on a fork taken before the
  // syscall; the two must end in identical states (DESIGN.md invariant 4).
  SyscallFixture F("  movi r1, 67108864\n  movi r0, 9");
  F.Proc.Mem.writeBytes(AddressLayout::DataBase, "data", 5);
  SystemContext Ctx;
  serviceSyscall(F.Proc, Ctx, nullptr); // open
  uint64_t Fd = F.Proc.Cpu.Regs[0];
  F.runToSyscall();
  F.Proc.Cpu.Regs[0] = uint64_t(Sys::Read);
  F.Proc.Cpu.Regs[1] = Fd;
  F.Proc.Cpu.Regs[2] = AddressLayout::DataBase + 0x200;
  F.Proc.Cpu.Regs[3] = 64;

  Process Replica = F.Proc.fork(2);
  SyscallEffects Eff;
  serviceSyscall(F.Proc, Ctx, &Eff);
  EXPECT_EQ(Eff.Number, uint64_t(Sys::Read));
  EXPECT_EQ(Eff.MemWrites.size(), 1u);

  playbackSyscall(Replica, Eff);
  EXPECT_EQ(Replica.Cpu.Pc, F.Proc.Cpu.Pc);
  EXPECT_EQ(Replica.Cpu.Regs[0], F.Proc.Cpu.Regs[0]);
  for (uint64_t Off = 0; Off != 64; Off += 8)
    EXPECT_EQ(Replica.Mem.read64(AddressLayout::DataBase + 0x200 + Off),
              F.Proc.Mem.read64(AddressLayout::DataBase + 0x200 + Off));
}

TEST(Kernel, ExitRecordsCode) {
  SyscallFixture F("  movi r0, 0\n  movi r1, 7");
  Process Replica = F.Proc.fork(2);
  SyscallEffects Eff;
  SystemContext Ctx;
  serviceSyscall(F.Proc, Ctx, &Eff);
  EXPECT_EQ(F.Proc.Status, ProcStatus::Exited);
  EXPECT_EQ(F.Proc.ExitCode, 7);
  EXPECT_TRUE(Eff.ProcessExited);
  playbackSyscall(Replica, Eff);
  EXPECT_EQ(Replica.Status, ProcStatus::Exited);
  EXPECT_EQ(Replica.ExitCode, 7);
}

// --- Process -----------------------------------------------------------

TEST(Process, ForkCopiesEverything) {
  Program Prog = makeCountdown(50);
  Process P = Process::create(Prog);
  Interpreter I(Prog, P.Cpu, P.Mem);
  I.run(20);
  P.Kern.Brk = 0x9999000;
  Process Child = P.fork(42);
  EXPECT_EQ(Child.Cpu, P.Cpu);
  EXPECT_EQ(Child.Kern.Pid, 42u);
  EXPECT_EQ(Child.Kern.Brk, 0x9999000u);

  // The two continue independently to the same deterministic result.
  Interpreter Ic(Prog, Child.Cpu, Child.Mem);
  RunResult Rp = I.run(100000);
  RunResult Rc = Ic.run(100000);
  EXPECT_EQ(Rp.Reason, StopReason::Syscall);
  EXPECT_EQ(Rc.Reason, StopReason::Syscall);
  EXPECT_EQ(P.Cpu, Child.Cpu);
}

// --- Scheduler ---------------------------------------------------------

/// Busy-works for a fixed number of ticks, then exits.
class WorkTask : public SimTask {
public:
  WorkTask(std::string Name, Ticks Work) : Name(std::move(Name)), Left(Work) {}
  std::string_view name() const override { return Name; }
  TaskStep step(Ticks Budget) override {
    Ticks Used = Budget < Left ? Budget : Left;
    Left -= Used;
    return {Used, Left == 0 ? TaskStatus::Exited : TaskStatus::Runnable};
  }

private:
  std::string Name;
  Ticks Left;
};

TEST(Scheduler, SingleTaskWallClockMatchesWork) {
  CostModel Model;
  Scheduler Sched(Model, 1, 1);
  Sched.addTask(std::make_unique<WorkTask>("w", 100 * Model.TicksPerMs / 10));
  Sched.runToCompletion();
  // One task, one CPU: wall time == work (quantum-rounded).
  EXPECT_EQ(Sched.now(), 100 * Model.TicksPerMs / 10);
  EXPECT_EQ(Sched.cpuTime(0), 100 * Model.TicksPerMs / 10);
}

TEST(Scheduler, ParallelTasksOverlap) {
  CostModel Model;
  Model.SmpTaxPerCpu = 0.0; // Isolate pure parallelism.
  Ticks Work = 1000 * Model.TicksPerMs / 10;
  // Four equal tasks on 4 CPUs finish in ~the time of one.
  Scheduler Par(Model, 4, 4);
  for (int I = 0; I != 4; ++I)
    Par.addTask(std::make_unique<WorkTask>("w" + std::to_string(I), Work));
  Par.runToCompletion();
  EXPECT_EQ(Par.now(), Work);

  // The same four tasks on 1 CPU take ~4x as long.
  Scheduler Ser(Model, 1, 1);
  for (int I = 0; I != 4; ++I)
    Ser.addTask(std::make_unique<WorkTask>("w" + std::to_string(I), Work));
  Ser.runToCompletion();
  EXPECT_GE(Ser.now(), 4 * Work);
  EXPECT_LE(Ser.now(), 4 * Work + 4 * Model.TicksPerMs);
}

TEST(Scheduler, SmpTaxSlowsConcurrentTasks) {
  CostModel Model; // default SmpTaxPerCpu > 0
  Ticks Work = 1000 * Model.TicksPerMs / 10;
  Scheduler Par(Model, 4, 4);
  for (int I = 0; I != 4; ++I)
    Par.addTask(std::make_unique<WorkTask>("w" + std::to_string(I), Work));
  Par.runToCompletion();
  EXPECT_GT(Par.now(), Work) << "memory contention must cost something";
  EXPECT_LT(Par.now(), Work * 3 / 2);
}

TEST(Scheduler, SmtSharesCores) {
  CostModel Model;
  Model.SmpTaxPerCpu = 0.0;
  Model.SmtThroughput = 1.25;
  Ticks Work = 1000 * Model.TicksPerMs / 10;
  // Two tasks on one physical core with 2 SMT contexts: total throughput
  // 1.25 => both finish in 2*Work/1.25 = 1.6*Work.
  Scheduler Smt(Model, 1, 2);
  Smt.addTask(std::make_unique<WorkTask>("a", Work));
  Smt.addTask(std::make_unique<WorkTask>("b", Work));
  Smt.runToCompletion();
  Ticks Expected = static_cast<Ticks>(2.0 * double(Work) / 1.25);
  EXPECT_NEAR(double(Smt.now()), double(Expected),
              double(2 * Model.TicksPerMs));
}

/// Blocks until woken, then exits.
class WaiterTask : public SimTask {
public:
  std::string_view name() const override { return "waiter"; }
  TaskStep step(Ticks) override { return {0, TaskStatus::Exited}; }
};

/// Works, then wakes a waiter.
class WakerTask : public SimTask {
public:
  WakerTask(Scheduler &Sched, Scheduler::TaskId Target, Ticks Work)
      : Sched(Sched), Target(Target), Left(Work) {}
  std::string_view name() const override { return "waker"; }
  TaskStep step(Ticks Budget) override {
    Ticks Used = Budget < Left ? Budget : Left;
    Left -= Used;
    if (Left == 0) {
      Sched.wake(Target);
      return {Used, TaskStatus::Exited};
    }
    return {Used, TaskStatus::Runnable};
  }

private:
  Scheduler &Sched;
  Scheduler::TaskId Target;
  Ticks Left;
};

TEST(Scheduler, BlockedTasksWaitForWake) {
  CostModel Model;
  Scheduler Sched(Model, 2, 2);
  Scheduler::TaskId Waiter =
      Sched.addTask(std::make_unique<WaiterTask>(), /*StartBlocked=*/true);
  Sched.addTask(
      std::make_unique<WakerTask>(Sched, Waiter, 50 * Model.TicksPerMs));
  Sched.runToCompletion();
  EXPECT_TRUE(Sched.hasExited(Waiter));
}

TEST(Scheduler, TasksAddedMidRunAreScheduled) {
  CostModel Model;
  class Spawner : public SimTask {
  public:
    Spawner(Scheduler &Sched, bool &ChildRan) : Sched(Sched),
                                                ChildRan(ChildRan) {}
    std::string_view name() const override { return "spawner"; }
    TaskStep step(Ticks Budget) override {
      if (!Spawned) {
        Spawned = true;
        Sched.addTask(std::make_unique<WorkTask>("child", Budget / 2));
        ChildRan = true;
      }
      return {Budget / 4, TaskStatus::Exited};
    }

  private:
    Scheduler &Sched;
    bool &ChildRan;
    bool Spawned = false;
  };
  bool ChildRan = false;
  Scheduler Sched(Model, 2, 2);
  Sched.addTask(std::make_unique<Spawner>(Sched, ChildRan));
  Sched.runToCompletion();
  EXPECT_TRUE(ChildRan);
}

// --- DirectRun ---------------------------------------------------------

TEST(DirectRun, CapStopsRunawayPrograms) {
  std::string Err;
  auto Prog = assemble("main:\n  jmp main\n", "spin", Err);
  ASSERT_TRUE(Prog);
  DirectRunResult R = runDirect(*Prog, 10000);
  EXPECT_FALSE(R.Exited);
  EXPECT_EQ(R.Insts, 10000u);
}

} // namespace

// --- Scheduler fairness and accounting (appended suite) ---------------------

namespace {

TEST(Scheduler, RoundRobinSharesFairly) {
  // Three equal tasks on two CPUs: all should finish within one quantum
  // of each other, each receiving ~2/3 CPU share.
  CostModel Model;
  Model.SmpTaxPerCpu = 0.0;
  Ticks Work = 600 * Model.TicksPerMs / 10;
  Scheduler Sched(Model, 2, 2);
  for (int I = 0; I != 3; ++I)
    Sched.addTask(std::make_unique<WorkTask>("w" + std::to_string(I), Work));
  Sched.runToCompletion();
  // Total work = 3W over 2 CPUs => wall ~ 1.5W.
  EXPECT_NEAR(double(Sched.now()), 1.5 * double(Work),
              double(4 * Model.TicksPerMs));
  for (Scheduler::TaskId Id = 0; Id != 3; ++Id)
    EXPECT_EQ(Sched.cpuTime(Id), Work);
}

TEST(Scheduler, CpuTimeConservation) {
  // Sum of per-task CPU time can never exceed wall * PhysCpus-equivalent
  // throughput (with the default SMP tax it is strictly below).
  CostModel Model;
  Ticks Work = 400 * Model.TicksPerMs / 10;
  Scheduler Sched(Model, 4, 4);
  for (int I = 0; I != 9; ++I)
    Sched.addTask(std::make_unique<WorkTask>("w" + std::to_string(I), Work));
  Sched.runToCompletion();
  Ticks Total = 0;
  for (Scheduler::TaskId Id = 0; Id != 9; ++Id)
    Total += Sched.cpuTime(Id);
  EXPECT_EQ(Total, 9 * Work);
  EXPECT_LE(Total, Sched.now() * 4);
}

TEST(Scheduler, PeakParallelismTracksLoad) {
  CostModel Model;
  Ticks Work = 100 * Model.TicksPerMs / 10;
  Scheduler Sched(Model, 8, 8);
  for (int I = 0; I != 5; ++I)
    Sched.addTask(std::make_unique<WorkTask>("w" + std::to_string(I), Work));
  Sched.runToCompletion();
  EXPECT_EQ(Sched.peakParallelism(), 5u);
}

} // namespace

// --- TickLedger (appended suite) ---------------------------------------------

namespace {

TEST(TickLedger, ChargesWithinBudget) {
  TickLedger L;
  L.beginStep(100);
  EXPECT_TRUE(L.hasBudget());
  EXPECT_EQ(L.remaining(), 100u);
  L.charge(30);
  EXPECT_EQ(L.used(), 30u);
  EXPECT_EQ(L.remaining(), 70u);
  L.charge(70);
  EXPECT_FALSE(L.hasBudget());
  EXPECT_FALSE(L.inDebt());
}

TEST(TickLedger, OverflowBecomesDebt) {
  TickLedger L;
  L.beginStep(100);
  L.charge(250); // 150 of debt
  EXPECT_EQ(L.used(), 100u);
  EXPECT_TRUE(L.inDebt());
  EXPECT_EQ(L.remaining(), 0u);

  L.beginStep(100); // pays 100 of the debt
  EXPECT_EQ(L.used(), 100u);
  EXPECT_TRUE(L.inDebt());

  L.beginStep(100); // pays the last 50
  EXPECT_EQ(L.used(), 50u);
  EXPECT_FALSE(L.inDebt());
  EXPECT_TRUE(L.hasBudget());
}

TEST(TickLedger, ChargeBeforeBeginStepIsAllDebt) {
  // SuperPin charges the §4.4 signature-record cost at slice creation,
  // before the first scheduled step.
  TickLedger L;
  L.charge(500);
  L.beginStep(200);
  EXPECT_EQ(L.used(), 200u);
  EXPECT_TRUE(L.inDebt());
  L.beginStep(400);
  EXPECT_EQ(L.used(), 300u);
  EXPECT_FALSE(L.inDebt());
}

} // namespace
