//===- tests/support_test.cpp - Support library unit tests ----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/MathExtras.h"
#include "support/Random.h"
#include "support/RawOstream.h"
#include "support/Statistic.h"
#include "support/StringExtras.h"
#include "support/Table.h"

#include "gtest/gtest.h"

using namespace spin;

namespace {

// --- StringExtras ------------------------------------------------------

TEST(StringExtras, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringExtras, Split) {
  auto Pieces = split("a,b,,c", ',');
  ASSERT_EQ(Pieces.size(), 4u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[2], "");
  EXPECT_EQ(Pieces[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringExtras, SplitWhitespace) {
  auto Pieces = splitWhitespace("  one\ttwo   three \n");
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[1], "two");
  EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(StringExtras, ParseUint) {
  EXPECT_EQ(parseUint("123"), 123u);
  EXPECT_EQ(parseUint("0x1f"), 31u);
  EXPECT_EQ(parseUint("0b101"), 5u);
  EXPECT_EQ(parseUint(" 42 "), 42u);
  EXPECT_EQ(parseUint("18446744073709551615"), ~uint64_t(0));
  EXPECT_FALSE(parseUint(""));
  EXPECT_FALSE(parseUint("12x"));
  EXPECT_FALSE(parseUint("18446744073709551616")); // overflow
  EXPECT_FALSE(parseUint("-1"));
}

TEST(StringExtras, ParseInt) {
  EXPECT_EQ(parseInt("-17"), -17);
  EXPECT_EQ(parseInt("+17"), 17);
  EXPECT_EQ(parseInt("-0x10"), -16);
  EXPECT_EQ(parseInt("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(parseInt("-9223372036854775808"), INT64_MIN);
  EXPECT_FALSE(parseInt("9223372036854775808"));
  EXPECT_FALSE(parseInt("--3"));
}

TEST(StringExtras, Identifiers) {
  EXPECT_TRUE(isValidIdentifier("main"));
  EXPECT_TRUE(isValidIdentifier("_x.y$z"));
  EXPECT_FALSE(isValidIdentifier("1abc"));
  EXPECT_FALSE(isValidIdentifier(""));
  EXPECT_FALSE(isValidIdentifier("a b"));
}

TEST(StringExtras, Formatting) {
  EXPECT_EQ(formatWithCommas(0), "0");
  EXPECT_EQ(formatWithCommas(999), "999");
  EXPECT_EQ(formatWithCommas(1000), "1,000");
  EXPECT_EQ(formatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(formatFixed(1.2345, 2), "1.23");
  EXPECT_EQ(formatPercent(0.253, 1), "25.3%");
}

// --- MathExtras --------------------------------------------------------

TEST(MathExtras, Basics) {
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(4096));
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_FALSE(isPowerOf2(12));
  EXPECT_EQ(alignTo(13, 8), 16u);
  EXPECT_EQ(alignTo(16, 8), 16u);
  EXPECT_EQ(alignDown(13, 8), 8u);
  EXPECT_EQ(divideCeil(10, 3), 4u);
  EXPECT_EQ(divideCeil(9, 3), 3u);
  EXPECT_EQ(log2Exact(4096), 12u);
  EXPECT_EQ(saturatingSub(3, 5), 0u);
  EXPECT_EQ(saturatingSub(5, 3), 2u);
}

// --- Random ------------------------------------------------------------

TEST(Random, DeterministicAcrossInstances) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, BoundsRespected) {
  SplitMix64 Rng(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(Rng.nextBelow(10), 10u);
    uint64_t V = Rng.nextInRange(5, 9);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 9u);
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Random, RoughlyUniform) {
  SplitMix64 Rng(99);
  unsigned Buckets[10] = {};
  for (int I = 0; I != 10000; ++I)
    ++Buckets[Rng.nextBelow(10)];
  for (unsigned Count : Buckets) {
    EXPECT_GT(Count, 800u);
    EXPECT_LT(Count, 1200u);
  }
}

// --- RawOstream --------------------------------------------------------

TEST(RawOstream, FormatsScalars) {
  std::string Out;
  RawStringOstream OS(Out);
  OS << "x=" << 42 << " n=" << int64_t(-7) << " b=" << true << " c=" << 'z';
  OS.writeHex(255);
  EXPECT_EQ(Out, "x=42 n=-7 b=true c=z0xff");
}

TEST(RawOstream, Padding) {
  std::string Out;
  RawStringOstream OS(Out);
  OS.writePadded("ab", 5);
  OS << "|";
  OS.writeRightPadded("cd", 5);
  EXPECT_EQ(Out, "ab   |   cd");
}

TEST(RawOstream, NullsDiscards) {
  nulls() << "anything" << 123;
  SUCCEED();
}

// --- Statistic ---------------------------------------------------------

TEST(Statistic, CountersAndMerge) {
  StatisticRegistry A;
  A.counter("x") += 3;
  A.counter("x") += 2;
  A.counter("y") = 10;
  EXPECT_EQ(A.get("x"), 5u);
  EXPECT_EQ(A.get("missing"), 0u);

  StatisticRegistry B;
  B.counter("x") = 1;
  B.counter("z") = 7;
  A.mergeFrom(B);
  EXPECT_EQ(A.get("x"), 6u);
  EXPECT_EQ(A.get("z"), 7u);

  A.reset();
  EXPECT_EQ(A.get("x"), 0u);
  EXPECT_EQ(A.entries().size(), 3u); // names survive reset
}

TEST(Statistic, ReferenceStability) {
  StatisticRegistry R;
  uint64_t &First = R.counter("first");
  for (int I = 0; I != 100; ++I)
    R.counter("c" + std::to_string(I));
  First = 55;
  EXPECT_EQ(R.get("first"), 55u);
}

// --- CommandLine -------------------------------------------------------

TEST(CommandLine, ParsesTypedOptions) {
  OptionRegistry Registry;
  Opt<bool> Sp(Registry, "sp", false, "superpin");
  Opt<uint64_t> Msec(Registry, "spmsec", 1000, "slice ms");
  Opt<int64_t> Delta(Registry, "delta", 0, "signed");
  Opt<double> Ratio(Registry, "ratio", 1.0, "ratio");
  Opt<std::string> Tool(Registry, "t", "none", "tool");

  std::string Err;
  std::vector<std::string> Args = {"-sp",    "1",     "-spmsec", "250",
                                   "-delta", "-5",    "-ratio",  "0.5",
                                   "-t",     "icount"};
  ASSERT_TRUE(Registry.parse(Args, Err)) << Err;
  EXPECT_TRUE(Sp.value());
  EXPECT_EQ(Msec.value(), 250u);
  EXPECT_EQ(Delta.value(), -5);
  EXPECT_DOUBLE_EQ(Ratio.value(), 0.5);
  EXPECT_EQ(Tool.value(), "icount");
  EXPECT_TRUE(Sp.wasSet());
}

TEST(CommandLine, EqualsSyntaxAndAppArgs) {
  OptionRegistry Registry;
  Opt<uint64_t> N(Registry, "n", 1, "count");
  std::string Err;
  std::vector<std::string> Args = {"-n=9", "--", "app", "arg1"};
  ASSERT_TRUE(Registry.parse(Args, Err)) << Err;
  EXPECT_EQ(N.value(), 9u);
  ASSERT_EQ(Registry.appArgs().size(), 2u);
  EXPECT_EQ(Registry.appArgs()[0], "app");
}

TEST(CommandLine, Diagnostics) {
  OptionRegistry Registry;
  Opt<uint64_t> N(Registry, "n", 1, "count");
  std::string Err;
  EXPECT_FALSE(Registry.parse({"-bogus", "1"}, Err));
  EXPECT_NE(Err.find("bogus"), std::string::npos);
  EXPECT_FALSE(Registry.parse({"-n"}, Err));
  EXPECT_NE(Err.find("requires a value"), std::string::npos);
  EXPECT_FALSE(Registry.parse({"-n", "xyz"}, Err));
  EXPECT_NE(Err.find("invalid value"), std::string::npos);
  EXPECT_FALSE(Registry.parse({"stray"}, Err));
}

TEST(CommandLine, DefaultsSurviveNoArgs) {
  OptionRegistry Registry;
  Opt<uint64_t> N(Registry, "n", 123, "count");
  std::string Err;
  ASSERT_TRUE(Registry.parse({}, Err));
  EXPECT_EQ(N.value(), 123u);
  EXPECT_FALSE(N.wasSet());
}

// --- Table -------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table T;
  T.addColumn("name", Table::Align::Left);
  T.addColumn("value");
  T.startRow();
  T.cell("a");
  T.cell(uint64_t(1));
  T.startRow();
  T.cell("long-name");
  T.cell(uint64_t(12345));
  std::string Out;
  RawStringOstream OS(Out);
  T.print(OS);
  EXPECT_NE(Out.find("name       value"), std::string::npos);
  EXPECT_NE(Out.find("long-name  12345"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table T;
  T.addColumn("a");
  T.addColumn("b");
  T.startRow();
  T.cell(uint64_t(1));
  T.cellPercent(0.5, 0);
  std::string Out;
  RawStringOstream OS(Out);
  T.printCsv(OS);
  EXPECT_EQ(Out, "a,b\n1,50%\n");
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table T;
  T.addColumn("name");
  T.addColumn("note");
  T.startRow();
  T.cell("a,b");        // embedded comma
  T.cell("say \"hi\""); // embedded quotes
  T.startRow();
  T.cell("line\nbreak"); // embedded newline
  T.cell("plain");
  std::string Out;
  RawStringOstream OS(Out);
  T.printCsv(OS);
  EXPECT_EQ(Out, "name,note\n"
                 "\"a,b\",\"say \"\"hi\"\"\"\n"
                 "\"line\nbreak\",plain\n");
}

} // namespace

// --- JsonWriter (appended suite) ----------------------------------------

#include "support/Json.h"

namespace {

static std::string jsonOf(std::function<void(JsonWriter &)> Fn) {
  std::string Out;
  RawStringOstream OS(Out);
  JsonWriter J(OS);
  Fn(J);
  EXPECT_TRUE(J.complete());
  return Out;
}

TEST(Json, ScalarsAndNesting) {
  std::string Out = jsonOf([](JsonWriter &J) {
    J.beginObject()
        .field("name", "superpin")
        .field("count", uint64_t(42))
        .field("delta", int64_t(-3))
        .field("ok", true)
        .key("nested")
        .beginArray()
        .value(uint64_t(1))
        .value(uint64_t(2))
        .endArray()
        .endObject();
  });
  EXPECT_EQ(Out, "{\"name\":\"superpin\",\"count\":42,\"delta\":-3,"
                 "\"ok\":true,\"nested\":[1,2]}");
}

TEST(Json, StringEscaping) {
  std::string Out = jsonOf([](JsonWriter &J) {
    J.beginArray().value("a\"b\\c\nd\te").endArray();
  });
  EXPECT_EQ(Out, "[\"a\\\"b\\\\c\\nd\\te\"]");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(jsonOf([](JsonWriter &J) { J.beginObject().endObject(); }),
            "{}");
  EXPECT_EQ(jsonOf([](JsonWriter &J) { J.beginArray().endArray(); }), "[]");
}

TEST(Json, DoublesAreFixedPoint) {
  std::string Out =
      jsonOf([](JsonWriter &J) { J.beginArray().value(1.5).endArray(); });
  EXPECT_EQ(Out, "[1.500000]");
}

TEST(Table, JsonOutput) {
  Table T;
  T.addColumn("bench");
  T.addColumn("pct");
  T.startRow();
  T.cell("gcc");
  T.cellPercent(1.25, 0);
  std::string Out;
  RawStringOstream OS(Out);
  T.printJson(OS);
  EXPECT_EQ(Out, "[{\"bench\":\"gcc\",\"pct\":\"125%\"}]\n");
}

TEST(Table, JsonTypedCellsEmitNumbers) {
  Table T;
  T.addColumn("bench");
  T.addColumn("insts");
  T.addColumn("seconds");
  T.startRow();
  T.cell("gzip");
  T.cell(uint64_t(1058791));
  T.cell(1.25, 2);
  std::string Out;
  RawStringOstream OS(Out);
  T.printJson(OS);
  // Typed cells come out as JSON numbers (doubles via the writer's fixed
  // six-decimal form); text cells stay strings.
  EXPECT_EQ(Out, "[{\"bench\":\"gzip\",\"insts\":1058791,"
                 "\"seconds\":1.250000}]\n");
}

// --- JSON parser ---------------------------------------------------------

TEST(JsonParse, ObjectsArraysScalars) {
  std::optional<JsonValue> V = parseJson(
      "{\"name\":\"sp\",\"ok\":true,\"none\":null,"
      "\"list\":[1,-2,3.5],\"nested\":{\"k\":\"v\"}}");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->get("name")->asString(), "sp");
  EXPECT_TRUE(V->get("ok")->asBool());
  EXPECT_TRUE(V->get("none")->isNull());
  const std::vector<JsonValue> &List = V->get("list")->array();
  ASSERT_EQ(List.size(), 3u);
  EXPECT_EQ(List[0].kind(), JsonValue::Kind::UInt);
  EXPECT_EQ(List[0].asUInt(), 1u);
  EXPECT_EQ(List[1].kind(), JsonValue::Kind::Int);
  EXPECT_EQ(List[1].asInt(), -2);
  EXPECT_EQ(List[2].kind(), JsonValue::Kind::Double);
  EXPECT_EQ(List[2].asDouble(), 3.5);
  EXPECT_EQ(V->get("nested")->get("k")->asString(), "v");
  EXPECT_EQ(V->get("missing"), nullptr);
}

TEST(JsonParse, Uint64RoundTripIsLossless) {
  // Regression: a uint64 counter above 2^53 (e.g. a replay icount or tick
  // total) must survive a JsonWriter -> parseJson round trip exactly, not
  // squeezed through a double.
  const uint64_t Exact[] = {(uint64_t(1) << 53) + 1, ~uint64_t(0),
                            uint64_t(1) << 63};
  for (uint64_t N : Exact) {
    std::string Out =
        jsonOf([&](JsonWriter &J) { J.beginArray().value(N).endArray(); });
    std::optional<JsonValue> V = parseJson(Out);
    ASSERT_TRUE(V.has_value()) << Out;
    ASSERT_EQ(V->array().size(), 1u);
    EXPECT_EQ(V->array()[0].kind(), JsonValue::Kind::UInt);
    EXPECT_EQ(V->array()[0].asUInt(), N) << "lost precision for " << N;
  }
  // Negative integers keep 64-bit form too.
  std::optional<JsonValue> V = parseJson("[-9223372036854775808]");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->array()[0].kind(), JsonValue::Kind::Int);
  EXPECT_EQ(V->array()[0].asInt(), INT64_MIN);
}

TEST(JsonParse, StringEscapesDecode) {
  std::optional<JsonValue> V = parseJson("[\"a\\\"b\\\\c\\nd\\te\\u0041\"]");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->array()[0].asString(), "a\"b\\c\nd\teA");
}

TEST(JsonParse, MalformedInputsRejected) {
  std::string Err;
  EXPECT_FALSE(parseJson("{\"a\":}", &Err).has_value());
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(parseJson("[1,2", &Err).has_value());
  EXPECT_FALSE(parseJson("", &Err).has_value());
  EXPECT_FALSE(parseJson("{} trailing", &Err).has_value());
  EXPECT_FALSE(parseJson("+5", &Err).has_value());
}

} // namespace
