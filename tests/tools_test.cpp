//===- tests/tools_test.cpp - Pintool correctness tests -------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Every shipped Pintool must produce identical results under serial Pin
// and under SuperPin (after merging). This is the paper's implicit
// correctness contract for convertible tools (Section 4.5).
//
//===----------------------------------------------------------------------===//

#include "tools/BranchProfile.h"
#include "tools/DCache.h"
#include "tools/Icount.h"
#include "tools/MemTrace.h"
#include "tools/OpcodeMix.h"
#include "tools/Sampler.h"

#include "TestPrograms.h"
#include "os/DirectRun.h"
#include "pin/Runner.h"
#include "superpin/Engine.h"
#include "superpin/SpApi.h"
#include "workloads/Generator.h"

#include "gtest/gtest.h"

using namespace spin;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::test;
using namespace spin::tools;
using namespace spin::vm;

namespace {

Program toolWorkload(workloads::SysMix Mix = workloads::SysMix::Mixed,
                     uint64_t Insts = 250'000) {
  workloads::GenParams P;
  P.Name = "toolwork";
  P.TargetInsts = Insts;
  P.NumFuncs = 5;
  P.BlocksPerFunc = 6;
  P.AluPerBlock = 3;
  P.WorkingSetBytes = 1 << 15;
  P.SyscallMask = Mix == workloads::SysMix::None ? 0 : 63;
  P.Mix = Mix;
  return workloads::generateWorkload(P);
}

sp::SpOptions spOptions() {
  sp::SpOptions Opts;
  Opts.SliceMs = 40;
  return Opts;
}

// --- icount -------------------------------------------------------------

TEST(Tools, IcountSerialEqualsSuperPinAndNative) {
  Program Prog = toolWorkload();
  CostModel Model;
  DirectRunResult Native = runDirect(Prog);
  for (IcountGranularity G :
       {IcountGranularity::Instruction, IcountGranularity::BasicBlock}) {
    auto Serial = std::make_shared<IcountResult>();
    runSerialPin(Prog, Model, 100, makeIcountTool(G, Serial));
    auto Sp = std::make_shared<IcountResult>();
    sp::runSuperPin(Prog, makeIcountTool(G, Sp), spOptions(), Model);
    EXPECT_EQ(Serial->Total, Native.Insts);
    EXPECT_EQ(Sp->Total, Native.Insts);
  }
}

TEST(Tools, IcountFiniOutputMatchesFigure2) {
  Program Prog = makeCountdown(100);
  CostModel Model;
  RunReport Rep = runSerialPin(
      Prog, Model, 100, makeIcountTool(IcountGranularity::BasicBlock));
  EXPECT_NE(Rep.FiniOutput.find("Total Count: "), std::string::npos);
}

// --- dcache -------------------------------------------------------------

TEST(Tools, DCacheDirectMappedExactAcrossModes) {
  Program Prog = toolWorkload(workloads::SysMix::ReadWrite);
  CostModel Model;
  for (uint32_t NumSets : {64, 256, 2048}) {
    DCacheConfig Config;
    Config.NumSets = NumSets;
    Config.Assoc = 1;
    auto Serial = std::make_shared<DCacheResult>();
    runSerialPin(Prog, Model, 100, makeDCacheTool(Config, Serial));
    auto Sp = std::make_shared<DCacheResult>();
    sp::SpRunReport Rep = sp::runSuperPin(Prog, makeDCacheTool(Config, Sp),
                                          spOptions(), Model);
    ASSERT_GT(Rep.NumSlices, 2u);
    EXPECT_EQ(Serial->Accesses, Sp->Accesses) << NumSets;
    EXPECT_EQ(Serial->Hits, Sp->Hits) << NumSets;
    EXPECT_EQ(Serial->Misses, Sp->Misses) << NumSets;
    EXPECT_GT(Sp->ReconciledAssumptions, 0u)
        << "the assume-hit mechanism should actually fire";
  }
}

TEST(Tools, DCacheSetAssociativeConservesAccesses) {
  // LRU state across slice boundaries is approximate (documented), but
  // access counts must be exact and hit counts close.
  Program Prog = toolWorkload(workloads::SysMix::None);
  CostModel Model;
  DCacheConfig Config;
  Config.NumSets = 128;
  Config.Assoc = 4;
  auto Serial = std::make_shared<DCacheResult>();
  runSerialPin(Prog, Model, 100, makeDCacheTool(Config, Serial));
  auto Sp = std::make_shared<DCacheResult>();
  sp::runSuperPin(Prog, makeDCacheTool(Config, Sp), spOptions(), Model);
  EXPECT_EQ(Serial->Accesses, Sp->Accesses);
  EXPECT_EQ(Serial->Hits + Serial->Misses, Serial->Accesses);
  EXPECT_EQ(Sp->Hits + Sp->Misses, Sp->Accesses);
  double SerialRate = double(Serial->Hits) / double(Serial->Accesses);
  double SpRate = double(Sp->Hits) / double(Sp->Accesses);
  EXPECT_NEAR(SerialRate, SpRate, 0.02);
}

TEST(Tools, DCacheHitRateImprovesWithSize) {
  Program Prog = toolWorkload(workloads::SysMix::None);
  CostModel Model;
  uint64_t PrevMisses = ~0ull;
  for (uint32_t NumSets : {16, 128, 4096}) {
    DCacheConfig Config;
    Config.NumSets = NumSets;
    auto R = std::make_shared<DCacheResult>();
    runSerialPin(Prog, Model, 100, makeDCacheTool(Config, R));
    EXPECT_LE(R->Misses, PrevMisses);
    PrevMisses = R->Misses;
  }
}

// --- branch profile ------------------------------------------------------

TEST(Tools, BranchProfileMatchesAcrossModes) {
  Program Prog = toolWorkload();
  CostModel Model;
  auto Serial = std::make_shared<BranchProfileResult>();
  runSerialPin(Prog, Model, 100, makeBranchProfileTool(Serial));
  auto Sp = std::make_shared<BranchProfileResult>();
  sp::runSuperPin(Prog, makeBranchProfileTool(Sp), spOptions(), Model);
  EXPECT_EQ(Serial->CondBranches, Sp->CondBranches);
  EXPECT_EQ(Serial->Taken, Sp->Taken);
  EXPECT_EQ(Serial->Calls, Sp->Calls);
  EXPECT_EQ(Serial->Returns, Sp->Returns);
  EXPECT_EQ(Serial->IndirectJumps, Sp->IndirectJumps);
  EXPECT_GT(Serial->CondBranches, 0u);
  EXPECT_GT(Serial->Calls, 0u);
  EXPECT_EQ(Serial->Calls, Serial->Returns)
      << "generated workloads balance calls and returns";
}

// --- opcode mix ----------------------------------------------------------

TEST(Tools, OpcodeMixMatchesAcrossModesAndTotals) {
  Program Prog = toolWorkload();
  CostModel Model;
  DirectRunResult Native = runDirect(Prog);
  auto Serial = std::make_shared<OpcodeMixResult>();
  runSerialPin(Prog, Model, 100, makeOpcodeMixTool(Serial));
  auto Sp = std::make_shared<OpcodeMixResult>();
  sp::runSuperPin(Prog, makeOpcodeMixTool(Sp), spOptions(), Model);
  EXPECT_EQ(Serial->Counts, Sp->Counts);
  EXPECT_EQ(Serial->total(), Native.Insts);
  EXPECT_GT(Serial->Counts[size_t(Opcode::Syscall)], 0u);
}

// --- memtrace ------------------------------------------------------------

TEST(Tools, MemTraceOrderedIdenticalAcrossModes) {
  Program Prog = toolWorkload(workloads::SysMix::ReadWrite, 120'000);
  CostModel Model;
  auto Serial = std::make_shared<MemTraceResult>();
  runSerialPin(Prog, Model, 100, makeMemTraceTool(Serial));
  auto Sp = std::make_shared<MemTraceResult>();
  sp::SpRunReport Rep = sp::runSuperPin(Prog, makeMemTraceTool(Sp),
                                        spOptions(), Model);
  ASSERT_GT(Rep.NumSlices, 2u);
  ASSERT_FALSE(Serial->Records.empty());
  EXPECT_EQ(Serial->Records.size(), Sp->Records.size());
  EXPECT_TRUE(Serial->Records == Sp->Records)
      << "slice-order merging must reconstruct the exact serial trace";
}

// --- sampler -------------------------------------------------------------

TEST(Tools, SamplerUnlimitedCoversSerialProfile) {
  // Block-granularity histograms are trace-partition dependent: a slice
  // whose boundary lands mid-block re-forms traces with an extra head at
  // the boundary pc (real Pin behaves the same way when code is entered
  // at a new address). The invariant is containment: every serially
  // observed block appears with the exact same count under SuperPin; the
  // only additions are boundary-split tails.
  Program Prog = toolWorkload(workloads::SysMix::None, 150'000);
  CostModel Model;
  auto Serial = std::make_shared<SamplerResult>();
  runSerialPin(Prog, Model, 100, makeSamplerTool(0, Serial));
  auto Sp = std::make_shared<SamplerResult>();
  sp::SpRunReport Rep =
      sp::runSuperPin(Prog, makeSamplerTool(0, Sp), spOptions(), Model);
  ASSERT_FALSE(Serial->BlockCounts.empty());
  for (const auto &[Addr, Count] : Serial->BlockCounts) {
    auto It = Sp->BlockCounts.find(Addr);
    ASSERT_NE(It, Sp->BlockCounts.end()) << "missing block " << Addr;
    EXPECT_EQ(It->second, Count) << "count mismatch at block " << Addr;
  }
  EXPECT_LE(Sp->BlockCounts.size(),
            Serial->BlockCounts.size() + Rep.NumSlices)
      << "at most one extra split block per slice boundary";
  EXPECT_EQ(Serial->SlicesEndedEarly, 0u);
  EXPECT_EQ(Sp->SlicesEndedEarly, 0u);
}

TEST(Tools, SamplerBudgetEndsSlicesEarly) {
  Program Prog = toolWorkload(workloads::SysMix::None, 300'000);
  CostModel Model;
  auto Sp = std::make_shared<SamplerResult>();
  sp::SpRunReport Rep =
      sp::runSuperPin(Prog, makeSamplerTool(500, Sp), spOptions(), Model);
  EXPECT_GT(Sp->SlicesEndedEarly, 0u);
  EXPECT_FALSE(Rep.PartitionOk)
      << "SP_EndSlice intentionally leaves coverage gaps";
  // Sampled count is capped near budget * slices.
  EXPECT_LE(Sp->SampledBlocks, 500 * Rep.NumSlices + Rep.NumSlices);
  // Some slices ended via ToolStop.
  bool SawToolStop = false;
  for (const sp::SliceInfo &S : Rep.Slices)
    if (S.EndKind == sp::SliceEndKind::ToolStop)
      SawToolStop = true;
  EXPECT_TRUE(SawToolStop);
}

// --- function-style API (SpApi) -------------------------------------------

TEST(Tools, FunctionToolMirrorsClassTool) {
  Program Prog = toolWorkload();
  CostModel Model;
  DirectRunResult Native = runDirect(Prog);

  auto Count = std::make_shared<uint64_t>(0);
  ToolFactory Factory =
      sp::makeFunctionTool("fig2", [Count](sp::SpToolContext &Ctx) {
        struct State {
          uint64_t Icount = 0;
          uint64_t *Shared;
        };
        auto St = std::make_shared<State>();
        Ctx.SP_Init([St](uint32_t) { St->Icount = 0; });
        St->Shared = static_cast<uint64_t *>(Ctx.SP_CreateSharedArea(
            &St->Icount, sizeof(uint64_t), AutoMerge::None));
        Ctx.SP_AddSliceEndFunction(
            [St](uint32_t) { *St->Shared += St->Icount; });
        Ctx.TRACE_AddInstrumentFunction([St](Trace &T) {
          for (uint32_t B = 0; B != T.numBbls(); ++B) {
            Bbl Block = T.bblAt(B);
            Block.insHead().insertCall(
                [St](const uint64_t *A) { St->Icount += A[0]; },
                {Arg::imm(Block.numIns())});
          }
        });
        Ctx.PIN_AddFiniFunction(
            [St, Count](RawOstream &) { *Count = *St->Shared; });
      });

  sp::SpRunReport Rep = sp::runSuperPin(Prog, Factory, spOptions(), Model);
  EXPECT_EQ(*Count, Native.Insts);
  EXPECT_TRUE(Rep.PartitionOk);

  // Same tool under serial Pin (SP_Init returns false there).
  *Count = 0;
  runSerialPin(Prog, Model, 100, Factory);
  EXPECT_EQ(*Count, Native.Insts);
}

} // namespace

// --- CallGraph (appended suite) -------------------------------------------

#include "tools/CallGraph.h"

namespace {

TEST(Tools, CallGraphSerialFindsAllEdges) {
  Program Prog = toolWorkload(workloads::SysMix::None, 120'000);
  CostModel Model;
  auto Serial = std::make_shared<CallGraphResult>();
  runSerialPin(Prog, Model, 100, makeCallGraphTool(Serial));
  auto Branch = std::make_shared<BranchProfileResult>();
  runSerialPin(Prog, Model, 100, makeBranchProfileTool(Branch));
  EXPECT_EQ(Serial->TotalCalls, Branch->Calls)
      << "call-graph total must equal the branch profiler's call count";
  EXPECT_GT(Serial->Edges.size(), 3u);
  EXPECT_EQ(Serial->unknownCallerCalls(), 0u);
}

TEST(Tools, CallGraphSuperPinPreservesPerCalleeTotals) {
  // Slice-boundary frames degrade caller attribution to UnknownCaller
  // (documented); per-callee call totals must still be exact.
  Program Prog = toolWorkload(workloads::SysMix::None, 200'000);
  CostModel Model;
  auto Serial = std::make_shared<CallGraphResult>();
  runSerialPin(Prog, Model, 100, makeCallGraphTool(Serial));
  auto Sp = std::make_shared<CallGraphResult>();
  sp::SpRunReport Rep =
      sp::runSuperPin(Prog, makeCallGraphTool(Sp), spOptions(), Model);
  ASSERT_GT(Rep.NumSlices, 2u);
  EXPECT_EQ(Serial->TotalCalls, Sp->TotalCalls);

  std::map<uint64_t, uint64_t> SerialPerCallee, SpPerCallee;
  for (const auto &[Edge, Count] : Serial->Edges)
    SerialPerCallee[Edge.second] += Count;
  for (const auto &[Edge, Count] : Sp->Edges)
    SpPerCallee[Edge.second] += Count;
  EXPECT_EQ(SerialPerCallee, SpPerCallee);
}

} // namespace

// --- ICache (appended suite) -----------------------------------------------

#include "tools/ICache.h"

namespace {

TEST(Tools, ICacheDirectMappedExactAcrossModes) {
  Program Prog = toolWorkload(workloads::SysMix::None, 200'000);
  CostModel Model;
  CacheGeometry Geometry;
  Geometry.NumSets = 256;
  Geometry.LineBytes = 32;
  auto Serial = std::make_shared<ICacheResult>();
  runSerialPin(Prog, Model, 100, makeICacheTool(Geometry, Serial));
  auto Sp = std::make_shared<ICacheResult>();
  sp::SpRunReport Rep = sp::runSuperPin(Prog, makeICacheTool(Geometry, Sp),
                                        spOptions(), Model);
  ASSERT_GT(Rep.NumSlices, 2u);
  EXPECT_EQ(Serial->Accesses, Sp->Accesses);
  EXPECT_EQ(Serial->Hits, Sp->Hits);
  EXPECT_EQ(Serial->Misses, Sp->Misses);
  // The fetch stream is the instruction stream.
  DirectRunResult Native = runDirect(Prog);
  EXPECT_EQ(Serial->Accesses, Native.Insts);
}

TEST(Tools, ICacheHotLoopsHitAlmostAlways) {
  Program Prog = toolWorkload(workloads::SysMix::None, 150'000);
  CostModel Model;
  CacheGeometry Geometry; // 64KiB i-cache vs a few-KiB footprint
  auto R = std::make_shared<ICacheResult>();
  runSerialPin(Prog, Model, 100, makeICacheTool(Geometry, R));
  EXPECT_GT(double(R->Hits) / double(R->Accesses), 0.99);
}

TEST(Tools, SpDisabledDegradesToSerialPin) {
  // -sp 0 through the library API: same counts, no slices.
  Program Prog = toolWorkload(workloads::SysMix::Mixed, 100'000);
  CostModel Model;
  DirectRunResult Native = runDirect(Prog);
  sp::SpOptions Opts;
  Opts.Enabled = false;
  auto Count = std::make_shared<IcountResult>();
  sp::SpRunReport Rep = sp::runSuperPin(
      Prog, makeIcountTool(IcountGranularity::Instruction, Count), Opts,
      Model);
  EXPECT_EQ(Count->Total, Native.Insts);
  EXPECT_EQ(Rep.NumSlices, 0u);
  EXPECT_EQ(Rep.Output, Native.Output);
  EXPECT_NE(Rep.FiniOutput.find("Total Count"), std::string::npos);
}

} // namespace

// --- IPOINT_AFTER, LoadValueProfile, Composite (appended suite) -------------

#include "tools/Composite.h"
#include "tools/LoadValueProfile.h"

namespace {

TEST(Tools, LoadValueProfileObservesPostExecState) {
  // A program with known load results: zeros from fresh memory, then a
  // known wide constant.
  Program Prog = mustAssemble(R"(
main:
  movi r2, buf
  movi r4, 3000000000
  st64 [r2+0], r4
  ld64 r3, [r2+0]     ; wide (needs 32.. bits: 3e9 > 2^31, < 2^32 -> fit32)
  ld64 r5, [r2+8]     ; zero
  ld8u r6, [r2+0]     ; fit8 (low byte of 3e9 = 0x00? compute below)
  movi r0, 0
  movi r1, 0
  syscall
.data
buf: .space 16
)",
                              "loads");
  CostModel Model;
  auto R = std::make_shared<LoadValueProfileResult>();
  runSerialPin(Prog, Model, 100, makeLoadValueProfileTool(R));
  EXPECT_EQ(R->Loads, 3u);
  EXPECT_EQ(R->Fit32, 1u); // 3,000,000,000 fits in 32 bits, not 16
  EXPECT_EQ(R->ZeroLoads + R->Fit8, 2u); // the zero load + the byte load
}

TEST(Tools, LoadValueProfileMatchesAcrossModes) {
  Program Prog = toolWorkload(workloads::SysMix::ReadWrite, 150'000);
  CostModel Model;
  auto Serial = std::make_shared<LoadValueProfileResult>();
  runSerialPin(Prog, Model, 100, makeLoadValueProfileTool(Serial));
  auto Sp = std::make_shared<LoadValueProfileResult>();
  sp::runSuperPin(Prog, makeLoadValueProfileTool(Sp), spOptions(), Model);
  EXPECT_EQ(Serial->Loads, Sp->Loads);
  EXPECT_EQ(Serial->ZeroLoads, Sp->ZeroLoads);
  EXPECT_EQ(Serial->Fit8, Sp->Fit8);
  EXPECT_EQ(Serial->Fit16, Sp->Fit16);
  EXPECT_EQ(Serial->Fit32, Sp->Fit32);
  EXPECT_EQ(Serial->Wide, Sp->Wide);
  EXPECT_GT(Serial->Loads, 0u);
}

TEST(Tools, CompositeToolRunsAllSubTools) {
  Program Prog = toolWorkload(workloads::SysMix::Mixed, 150'000);
  CostModel Model;
  DirectRunResult Native = runDirect(Prog);

  auto Count = std::make_shared<IcountResult>();
  auto Cache = std::make_shared<DCacheResult>();
  auto Branch = std::make_shared<BranchProfileResult>();
  std::vector<ToolFactory> Subs = {
      makeIcountTool(IcountGranularity::Instruction, Count),
      makeDCacheTool(DCacheConfig(), Cache),
      makeBranchProfileTool(Branch)};
  sp::SpRunReport Rep = sp::runSuperPin(Prog, makeCompositeTool(Subs),
                                        spOptions(), Model);
  EXPECT_TRUE(Rep.PartitionOk);
  EXPECT_EQ(Count->Total, Native.Insts);
  EXPECT_GT(Cache->Accesses, 0u);
  EXPECT_GT(Branch->CondBranches, 0u);
  // All three tools' Fini output concatenates.
  EXPECT_NE(Rep.FiniOutput.find("Total Count"), std::string::npos);
  EXPECT_NE(Rep.FiniOutput.find("dcache:"), std::string::npos);
  EXPECT_NE(Rep.FiniOutput.find("branches:"), std::string::npos);

  // And the composite matches individually-run tools.
  auto Count2 = std::make_shared<IcountResult>();
  sp::runSuperPin(Prog,
                  makeIcountTool(IcountGranularity::Instruction, Count2),
                  spOptions(), Model);
  EXPECT_EQ(Count->Total, Count2->Total);
}

} // namespace

// --- Syscount (appended suite) ----------------------------------------------

#include "os/Syscalls.h"
#include "tools/Syscount.h"

namespace {

TEST(Tools, SyscountMatchesAcrossModesAndNative) {
  Program Prog = toolWorkload(workloads::SysMix::Mixed, 200'000);
  CostModel Model;
  DirectRunResult Native = runDirect(Prog);

  auto Serial = std::make_shared<SyscountResult>();
  runSerialPin(Prog, Model, 100, makeSyscountTool(Serial));
  EXPECT_EQ(Serial->total(), Native.Syscalls);

  auto Sp = std::make_shared<SyscountResult>();
  sp::SpRunReport Rep =
      sp::runSuperPin(Prog, makeSyscountTool(Sp), spOptions(), Model);
  ASSERT_GT(Rep.NumSlices, 2u);
  EXPECT_EQ(Serial->CountByNumber, Sp->CountByNumber)
      << "per-number syscall counts must merge exactly";
  // The Mixed workload performs gettime/getpid/rand plus write+exit.
  EXPECT_GT(Sp->CountByNumber[uint64_t(os::Sys::GetPid)], 0u);
  EXPECT_EQ(Sp->CountByNumber[uint64_t(os::Sys::Exit)], 1u);
}

} // namespace
