//===- tests/hostobs_test.cpp - Host observability tests ------------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The host wall-clock observability layer (obs/HostTraceRecorder.h) and
// its engine/replay wiring. The load-bearing property, tested here the
// same way prof_test pins the per-lane tick invariant: every worker wall
// nanosecond is attributed to exactly one of body / dispatch-wait /
// merge-wait / idle / retire, and the five sums add up to the lane's
// lifetime exactly — after synthetic span streams, after ring overflow,
// and after real -spmp engine and replay runs. Also covered: the recorder
// primitives (binding, gauges, ring drops), the -sptrace-forces-serial
// warning, report table consistency, and tracing neutrality (attaching
// the recorder cannot change -spmp results).
//
//===----------------------------------------------------------------------===//

#include "obs/HostTraceRecorder.h"
#include "obs/TraceRecorder.h"

#include "replay/CaptureWriter.h"
#include "replay/ReplayEngine.h"
#include "superpin/Engine.h"
#include "superpin/Reporting.h"
#include "support/RawOstream.h"
#include "tools/Icount.h"
#include "workloads/Spec2000.h"

#include "gtest/gtest.h"

#include <cmath>
#include <thread>

using namespace spin;
using namespace spin::obs;
using namespace spin::os;
using namespace spin::sp;
using namespace spin::tools;
using namespace spin::vm;

namespace {

// --- Recorder primitives -------------------------------------------------

TEST(HostTraceRecorder, NamesAreStable) {
  EXPECT_STREQ(hostSpanName(HostSpanKind::Body), "host.body");
  EXPECT_STREQ(hostSpanName(HostSpanKind::DispatchWait), "host.dispatchwait");
  EXPECT_STREQ(hostSpanName(HostSpanKind::MergeWait), "host.mergewait");
  EXPECT_STREQ(hostSpanName(HostSpanKind::Idle), "host.idle");
  EXPECT_STREQ(hostSpanName(HostSpanKind::Retire), "host.retire");
  EXPECT_STREQ(hostSpanName(HostSpanKind::SimReplay), "host.sim.replay");
  EXPECT_STREQ(hostSpanName(HostSpanKind::SimRetire), "host.sim.retire");
  EXPECT_STREQ(hostCounterName(HostCounterKind::QueueDepth),
               "host.queue.depth");
  EXPECT_STREQ(hostCounterName(HostCounterKind::InFlight), "host.inflight");
  EXPECT_STREQ(hostCounterName(HostCounterKind::ArenaBytes),
               "host.arena.bytes");
  EXPECT_STREQ(hostCounterName(HostCounterKind::CompletionDepth),
               "host.completion.depth");
}

TEST(HostTraceRecorder, LaneLayoutAndNames) {
  HostTraceRecorder Rec;
  Rec.initLanes(3);
  EXPECT_EQ(Rec.workers(), 3u);
  EXPECT_EQ(Rec.simLane(), 3u);
  EXPECT_EQ(Rec.lanes(), 4u);
  EXPECT_EQ(Rec.laneName(0), "worker-0");
  EXPECT_EQ(Rec.laneName(2), "worker-2");
  EXPECT_EQ(Rec.laneName(3), "sim");
}

TEST(HostTraceRecorder, ThreadBinding) {
  HostTraceRecorder Rec;
  Rec.initLanes(2);
  EXPECT_EQ(Rec.boundLane(), -1);
  Rec.bindThread(1);
  EXPECT_EQ(Rec.boundLane(), 1);
  // Binding is per thread: another thread starts unbound.
  int Other = 0;
  std::thread T([&] { Other = Rec.boundLane(); });
  T.join();
  EXPECT_EQ(Other, -1);
}

TEST(HostTraceRecorder, CounterHereIsNoOpWhenUnbound) {
  HostTraceRecorder Rec;
  Rec.initLanes(1);
  Rec.counterHere(HostCounterKind::QueueDepth, 5);
  EXPECT_TRUE(Rec.counterSnapshot().empty());
  Rec.bindThread(0);
  Rec.counterHere(HostCounterKind::QueueDepth, 5);
  ASSERT_EQ(Rec.counterSnapshot().size(), 1u);
  EXPECT_EQ(Rec.counterSnapshot()[0].Value, 5u);
}

TEST(HostTraceRecorder, GaugesClampAtZero) {
  HostTraceRecorder Rec;
  EXPECT_EQ(Rec.addQueueDepth(+1), 1u);
  EXPECT_EQ(Rec.addQueueDepth(+1), 2u);
  EXPECT_EQ(Rec.addQueueDepth(-1), 1u);
  EXPECT_EQ(Rec.addQueueDepth(-5), 0u);
  EXPECT_EQ(Rec.addCompletionDepth(-1), 0u);
}

TEST(HostTraceRecorder, SpanRingDropsOldestButKeepsExactTotals) {
  // A tiny ring: totals must stay exact even when nearly every span is
  // dropped from the exported window.
  HostTraceRecorder Rec(/*SpansPerLane=*/8, /*CountersPerLane=*/4);
  Rec.initLanes(1);
  Rec.laneStarted(0, 0);
  const uint64_t Spans = 100;
  for (uint64_t I = 0; I != Spans; ++I)
    Rec.span(0, I % 2 ? HostSpanKind::Body : HostSpanKind::Idle, I * 10,
             I * 10 + 10, I);
  Rec.laneStopped(0, Spans * 10);
  EXPECT_EQ(Rec.spanSnapshot(0).size(), 8u);
  EXPECT_EQ(Rec.droppedSpans(), Spans - 8);

  HostAttribution Attr = Rec.attribution();
  ASSERT_EQ(Attr.Workers.size(), 1u);
  const HostLaneAttribution &L = Attr.Workers[0];
  EXPECT_EQ(L.BodyNs, 50 * 10u);
  EXPECT_EQ(L.IdleNs, 50 * 10u);
  EXPECT_EQ(L.Bodies, 50u);
  EXPECT_EQ(L.LifetimeNs, Spans * 10);
  EXPECT_EQ(L.attributedNs(), L.LifetimeNs);
}

// --- Attribution ---------------------------------------------------------

TEST(HostAttribution, SyntheticLanesSumExactly) {
  HostTraceRecorder Rec;
  Rec.initLanes(2);
  Rec.laneStarted(0, 100);
  Rec.span(0, HostSpanKind::DispatchWait, 100, 130);
  Rec.span(0, HostSpanKind::Body, 130, 800, 7);
  Rec.span(0, HostSpanKind::Retire, 800, 850);
  Rec.span(0, HostSpanKind::Idle, 850, 1000);
  Rec.laneStopped(0, 1000);
  Rec.laneStarted(1, 100);
  Rec.span(1, HostSpanKind::Idle, 100, 1100);
  Rec.laneStopped(1, 1100);
  Rec.laneStarted(Rec.simLane(), 100);
  Rec.laneStopped(Rec.simLane(), 1100);

  HostAttribution Attr = Rec.attribution();
  ASSERT_EQ(Attr.Workers.size(), 2u);
  EXPECT_EQ(Attr.Workers[0].BodyNs, 670u);
  EXPECT_EQ(Attr.Workers[0].DispatchWaitNs, 30u);
  EXPECT_EQ(Attr.Workers[0].RetireNs, 50u);
  EXPECT_EQ(Attr.Workers[0].IdleNs, 150u);
  EXPECT_EQ(Attr.Workers[0].attributedNs(), Attr.Workers[0].LifetimeNs);
  EXPECT_EQ(Attr.Workers[1].IdleNs, 1000u);
  EXPECT_EQ(Attr.Workers[1].attributedNs(), 1000u);
  EXPECT_EQ(Attr.PoolLifetimeNs, 1000u); // max stop 1100 - min start 100
  EXPECT_EQ(Attr.dominantStall(), HostSpanKind::Idle);
  EXPECT_EQ(Attr.totalNs(HostSpanKind::Body), 670u);
  EXPECT_EQ(Attr.Workers[0].Bodies, 1u);
  EXPECT_NEAR(Attr.Workers[0].utilizationPct(), 100.0 * 670.0 / 900.0, 1e-9);
}

TEST(HostAttribution, MergeWaitIsCarvedOutOfIdleBySimOverlap) {
  HostTraceRecorder Rec;
  Rec.initLanes(1);
  Rec.laneStarted(0, 0);
  Rec.span(0, HostSpanKind::Body, 0, 400);
  Rec.span(0, HostSpanKind::Idle, 400, 1000);
  Rec.laneStopped(0, 1000);
  // Sim blocked 500..700 (replay) and 650..900 (retire): the overlap with
  // the worker's idle span is [500, 900) = 400ns of merge-wait.
  Rec.laneStarted(Rec.simLane(), 0);
  Rec.span(Rec.simLane(), HostSpanKind::SimReplay, 500, 700, 1);
  Rec.span(Rec.simLane(), HostSpanKind::SimRetire, 650, 900, 2);
  Rec.laneStopped(Rec.simLane(), 1000);

  HostAttribution Attr = Rec.attribution();
  ASSERT_EQ(Attr.Workers.size(), 1u);
  const HostLaneAttribution &L = Attr.Workers[0];
  EXPECT_EQ(L.MergeWaitNs, 400u);
  EXPECT_EQ(L.IdleNs, 200u); // 600 idle - 400 carved out
  EXPECT_EQ(L.BodyNs, 400u);
  // The carve moves nanoseconds between causes, never creates them.
  EXPECT_EQ(L.attributedNs(), L.LifetimeNs);
}

TEST(HostAttribution, EmptyRecorderIsWellFormed) {
  HostTraceRecorder Rec;
  HostAttribution Attr = Rec.attribution();
  EXPECT_TRUE(Attr.Workers.empty());
  EXPECT_EQ(Attr.PoolLifetimeNs, 0u);
  EXPECT_EQ(Attr.dominantStall(), HostSpanKind::Body);
}

// --- Engine integration --------------------------------------------------

SpOptions hostObsOptions(const char *Workload, uint32_t Workers) {
  SpOptions Opts;
  Opts.SliceMs = 50; // many slices even at small scales
  Opts.Cpi = workloads::findWorkload(Workload).Cpi;
  Opts.HostWorkers = Workers;
  return Opts;
}

TEST(HostObsEngine, AttributionSumsToLaneLifetimeExactly) {
  CostModel Model;
  Program Prog =
      workloads::buildWorkload(workloads::findWorkload("gzip"), 0.1);
  HostTraceRecorder Rec;
  SpOptions Opts = hostObsOptions("gzip", 4);
  Opts.HostTrace = &Rec;
  SpRunReport Rep = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);
  ASSERT_TRUE(Rep.PartitionOk);

  // The tentpole invariant, on a real run: every worker wall nanosecond
  // lands in exactly one taxonomy bucket.
  ASSERT_EQ(Rep.HostAttr.Workers.size(), 4u);
  uint64_t Bodies = 0;
  for (const HostLaneAttribution &L : Rep.HostAttr.Workers) {
    SCOPED_TRACE("worker " + std::to_string(L.Worker));
    EXPECT_EQ(L.attributedNs(), L.LifetimeNs);
    EXPECT_GT(L.LifetimeNs, 0u);
    Bodies += L.Bodies;
  }
  EXPECT_EQ(Bodies, Rep.HostDispatchedSlices);
  EXPECT_GT(Rep.HostAttr.PoolLifetimeNs, 0u);
  EXPECT_EQ(Rep.HostUtilizationHist.count(), 4u);
}

TEST(HostObsEngine, WorkerTableMatchesAggregates) {
  CostModel Model;
  Program Prog =
      workloads::buildWorkload(workloads::findWorkload("mcf"), 0.1);
  HostTraceRecorder Rec;
  SpOptions Opts = hostObsOptions("mcf", 2);
  Opts.HostTrace = &Rec;
  SpRunReport Rep = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);
  ASSERT_EQ(Rep.HostWorkerTable.size(), 2u);
  uint64_t Bodies = 0;
  double Seconds = 0;
  for (const SpRunReport::HostWorkerStats &WS : Rep.HostWorkerTable) {
    Bodies += WS.Bodies;
    Seconds += WS.BodySeconds;
  }
  EXPECT_EQ(Bodies, Rep.HostDispatchedSlices);
  EXPECT_NEAR(Seconds, Rep.HostBodySeconds, 1e-9);
}

TEST(HostObsEngine, RecorderCannotPerturbResults) {
  CostModel Model;
  Program Prog =
      workloads::buildWorkload(workloads::findWorkload("gzip"), 0.1);
  SpRunReport Plain = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock),
      hostObsOptions("gzip", 4), Model);
  HostTraceRecorder Rec;
  SpOptions Opts = hostObsOptions("gzip", 4);
  Opts.HostTrace = &Rec;
  SpRunReport Traced = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);
  EXPECT_EQ(Traced.FiniOutput, Plain.FiniOutput);
  EXPECT_EQ(Traced.Output, Plain.Output);
  EXPECT_EQ(Traced.WallTicks, Plain.WallTicks);
  EXPECT_EQ(Traced.NumSlices, Plain.NumSlices);
  EXPECT_EQ(Traced.HostDispatchedSlices, Plain.HostDispatchedSlices);
}

TEST(HostObsEngine, ValidateRequiresWorkersForHostTrace) {
  HostTraceRecorder Rec;
  SpOptions Opts;
  Opts.HostTrace = &Rec;
  Opts.HostWorkers = 0;
  EXPECT_NE(Opts.validate().find("-sphosttrace"), std::string::npos);
  Opts.HostWorkers = 2;
  EXPECT_TRUE(Opts.validate().empty());
}

TEST(HostObsEngine, HostStatsPrintIsGatedOnWorkers) {
  SpRunReport Serial;
  std::string Text;
  RawStringOstream OS(Text);
  printHostStats(Serial, OS);
  OS.flush();
  EXPECT_TRUE(Text.empty());

  SpRunReport Host;
  Host.HostWorkers = 2;
  Host.HostWorkerTable.resize(2);
  Host.HostWorkerTable[0].Worker = 0;
  Host.HostWorkerTable[1].Worker = 1;
  std::string HostText;
  RawStringOstream HostOS(HostText);
  printHostStats(Host, HostOS);
  HostOS.flush();
  EXPECT_NE(HostText.find("host: 2 workers"), std::string::npos);
  EXPECT_NE(HostText.find("worker-1"), std::string::npos);
}

// --- Replay integration --------------------------------------------------

replay::RunCapture captureRun(const CostModel &Model) {
  Program Prog =
      workloads::buildWorkload(workloads::findWorkload("gzip"), 0.1);
  replay::CaptureWriter Writer;
  SpOptions Opts;
  Opts.SliceMs = 50;
  Opts.Cpi = workloads::findWorkload("gzip").Cpi;
  Opts.Capture = &Writer;
  SpRunReport Live = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);
  EXPECT_TRUE(Live.PartitionOk);
  return Writer.take();
}

TEST(HostObsReplay, ParallelReplayAttributionSumsExactly) {
  CostModel Model;
  replay::RunCapture Cap = captureRun(Model);
  ASSERT_GT(Cap.Slices.size(), 2u);

  HostTraceRecorder Rec;
  replay::ReplayEngine Engine(Cap, Model);
  Engine.setHostWorkers(2);
  Engine.setHostTrace(&Rec);
  replay::ReplayReport Rep =
      Engine.replayAll(makeIcountTool(IcountGranularity::BasicBlock));
  EXPECT_TRUE(Rep.allOk());

  HostAttribution Attr = Rec.attribution();
  ASSERT_EQ(Attr.Workers.size(), 2u);
  uint64_t Bodies = 0;
  for (const HostLaneAttribution &L : Attr.Workers) {
    SCOPED_TRACE("worker " + std::to_string(L.Worker));
    EXPECT_EQ(L.attributedNs(), L.LifetimeNs);
    Bodies += L.Bodies;
  }
  EXPECT_EQ(Bodies, Rep.SlicesReplayed);
}

/// Replays the whole capture with \p Workers host workers and a trace
/// recorder attached, returning the exported Chrome-trace JSON.
static std::string replayTraceJson(const replay::RunCapture &Cap,
                                   const CostModel &Model, unsigned Workers) {
  obs::TraceRecorder Trace;
  replay::ReplayEngine Engine(Cap, Model);
  Engine.setHostWorkers(Workers);
  Engine.setTrace(&Trace);
  replay::ReplayReport Rep =
      Engine.replayAll(makeIcountTool(IcountGranularity::BasicBlock));
  EXPECT_TRUE(Rep.allOk());
  std::string Json;
  RawStringOstream OS(Json);
  Trace.writeChromeTrace(OS, Model.TicksPerMs);
  OS.flush();
  return Json;
}

TEST(HostObsReplay, ParallelTraceIsByteIdenticalAcrossWorkerCounts) {
  CostModel Model;
  replay::RunCapture Cap = captureRun(Model);
  ASSERT_GT(Cap.Slices.size(), 2u);

  // Staged stitching replays the serial timeline exactly: the trace JSON
  // must not change by a single byte when bodies move onto host workers.
  std::string Serial = replayTraceJson(Cap, Model, 0);
  EXPECT_NE(Serial.find("replay.slice"), std::string::npos);
  EXPECT_NE(Serial.find("replay.forward"), std::string::npos);
  for (unsigned Workers : {1u, 2u, 4u}) {
    SCOPED_TRACE("workers " + std::to_string(Workers));
    EXPECT_EQ(replayTraceJson(Cap, Model, Workers), Serial);
  }
}

TEST(HostObsReplay, ParallelTraceReplayIsSilent) {
  CostModel Model;
  replay::RunCapture Cap = captureRun(Model);

  // -sptrace no longer downgrades -spmp to serial; the combination runs
  // the pool and warns about nothing.
  obs::TraceRecorder Trace;
  replay::ReplayEngine Engine(Cap, Model);
  Engine.setHostWorkers(4);
  Engine.setTrace(&Trace);
  testing::internal::CaptureStderr();
  replay::ReplayReport Rep =
      Engine.replayAll(makeIcountTool(IcountGranularity::BasicBlock));
  EXPECT_EQ(testing::internal::GetCapturedStderr().find("warning:"),
            std::string::npos);
  EXPECT_TRUE(Rep.allOk());
}

} // namespace
