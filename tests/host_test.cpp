//===- tests/host_test.cpp - Host-parallel execution tests ----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The src/host subsystem (-spmp) and its engine integration. The contract
// under test everywhere: host workers change which thread executes a slice
// body and nothing else — tool fini output, application output, virtual
// ticks, slice accounting, fault recovery, and replay parity are all
// byte-identical between -spmp 0 and -spmp N for every N, regardless of
// how adversarially the workers are scheduled.
//
//===----------------------------------------------------------------------===//

#include "fault/FaultPlan.h"
#include "host/ChargeStream.h"
#include "host/CompletionQueue.h"
#include "host/WorkerPool.h"
#include "replay/CaptureWriter.h"
#include "replay/ReplayEngine.h"
#include "superpin/Engine.h"
#include "superpin/SpOptions.h"
#include "tools/DCache.h"
#include "tools/Icount.h"
#include "tools/OpcodeMix.h"
#include "workloads/Spec2000.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace spin;
using namespace spin::host;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::sp;
using namespace spin::tools;
using namespace spin::vm;

namespace {

// --- WorkerPool ----------------------------------------------------------

TEST(WorkerPool, RunsEveryJobAcrossWorkers) {
  std::atomic<int> Ran{0};
  {
    WorkerPool Pool(4);
    ASSERT_EQ(Pool.size(), 4u);
    for (int I = 0; I < 100; ++I)
      Pool.submit([&Ran](WorkerContext &) { ++Ran; });
  } // the destructor drains the queue before joining
  EXPECT_EQ(Ran.load(), 100);
}

TEST(WorkerPool, JobHookSeesEverySubmissionSequence) {
  std::mutex M;
  std::set<uint64_t> Seqs;
  std::set<unsigned> Workers;
  {
    WorkerPool Pool(2, [&](unsigned Worker, uint64_t Seq) {
      std::lock_guard<std::mutex> Lock(M);
      Seqs.insert(Seq);
      Workers.insert(Worker);
    });
    for (int I = 0; I < 50; ++I)
      Pool.submit([](WorkerContext &) {});
  }
  EXPECT_EQ(Seqs.size(), 50u);
  EXPECT_EQ(*Seqs.begin(), 0u);
  EXPECT_EQ(*Seqs.rbegin(), 49u);
  for (unsigned W : Workers)
    EXPECT_LT(W, 2u);
}

TEST(WorkerPool, ClampWorkersResolvesAutoToHostCores) {
  EXPECT_EQ(WorkerPool::clampWorkers(3), 3u);
  EXPECT_GE(WorkerPool::clampWorkers(~0u), 1u);
}

// --- CompletionQueue -----------------------------------------------------

TEST(CompletionQueue, KeyedPopDrainsInMergeOrderRegardlessOfFinishOrder) {
  CompletionQueue Q;
  // Four producers push interleaved slice numbers in descending order
  // with staggered delays; the consumer still drains 0..19 in order.
  std::vector<std::thread> Producers;
  for (unsigned P = 0; P < 4; ++P)
    Producers.emplace_back([&Q, P] {
      for (int N = 4; N >= 0; --N) {
        std::this_thread::sleep_for(std::chrono::microseconds(100 * P));
        SliceCompletion C;
        C.SliceNum = P + 4 * static_cast<uint32_t>(N);
        C.Worker = P;
        Q.push(C);
      }
    });
  for (uint32_t Num = 0; Num < 20; ++Num) {
    SliceCompletion C = Q.pop(Num);
    EXPECT_EQ(C.SliceNum, Num);
  }
  for (std::thread &T : Producers)
    T.join();
  EXPECT_EQ(Q.pending(), 0u);
}

TEST(CompletionQueue, TryPopOnlyYieldsThePresentRecord) {
  CompletionQueue Q;
  SliceCompletion C;
  EXPECT_FALSE(Q.tryPop(0, C));
  SliceCompletion In;
  In.SliceNum = 7;
  In.Failed = true;
  Q.push(In);
  EXPECT_FALSE(Q.tryPop(0, C));
  ASSERT_TRUE(Q.tryPop(7, C));
  EXPECT_TRUE(C.Failed);
  EXPECT_EQ(Q.pending(), 0u);
}

// --- ChargeStream / RecordingTap / StreamReplayer ------------------------

TEST(ChargeStream, RecordingTapCanonicalizesSegments) {
  ChargeStream S;
  RecordingTap Tap(S);
  // Ungated charge before the first check.
  Tap.onCharge(3);
  // Two equal gated segments RLE-merge; a third with a different sum
  // starts a new run.
  Tap.onCheck();
  Tap.onCharge(5);
  Tap.onCheck();
  Tap.onCharge(2);
  Tap.onCharge(3); // sums within a segment accumulate: 5 again
  Tap.onCheck();
  Tap.onCharge(7);
  // Budget checks with no charges between them collapse; zero charges
  // are dropped.
  Tap.onCheck();
  Tap.onCheck();
  Tap.onCharge(0);
  Tap.finish(/*Failed=*/false);

  const ChargeEvent &E1 = S.peek();
  EXPECT_EQ(E1.EventKind, ChargeEvent::Kind::Charge);
  EXPECT_EQ(E1.Sum, 3u);
  S.advance();
  const ChargeEvent &E2 = S.peek();
  EXPECT_EQ(E2.EventKind, ChargeEvent::Kind::ChargeRun);
  EXPECT_EQ(E2.Sum, 5u);
  EXPECT_EQ(E2.Count, 2u);
  S.advance();
  const ChargeEvent &E3 = S.peek();
  EXPECT_EQ(E3.EventKind, ChargeEvent::Kind::ChargeRun);
  EXPECT_EQ(E3.Sum, 7u);
  EXPECT_EQ(E3.Count, 1u);
  S.advance();
  const ChargeEvent &E4 = S.peek();
  EXPECT_EQ(E4.EventKind, ChargeEvent::Kind::Done);
  S.advance();
  EXPECT_FALSE(S.available());
}

TEST(ChargeStream, ReplayerPausesAtTheGateAndResumes) {
  ChargeStream S;
  ChargeEvent Run;
  Run.EventKind = ChargeEvent::Kind::ChargeRun;
  Run.Sum = 10;
  Run.Count = 5;
  S.push(Run);
  ChargeEvent Done;
  Done.EventKind = ChargeEvent::Kind::Done;
  S.push(Done);

  StreamReplayer R(S);
  TickLedger L;
  // 25-tick grant: three charges fit (the third overdraws into debt),
  // then the fourth gate refuses.
  L.beginStep(25);
  EXPECT_EQ(R.replay(L), StreamReplayer::Step::NeedBudget);
  EXPECT_EQ(L.totalCharged(), 30u);
  // Next step pays the debt and finishes the run; the terminal is
  // consumed in the same step.
  L.beginStep(25);
  EXPECT_EQ(R.replay(L), StreamReplayer::Step::Done);
  EXPECT_EQ(L.totalCharged(), 50u);
  EXPECT_FALSE(S.available());
}

TEST(ChargeStream, CrossChunkThreadedStreamReplaysEveryEvent) {
  // 2000 events span several 256-event chunks; the producer runs on its
  // own thread to exercise the publish/hop ordering.
  constexpr uint64_t N = 2000;
  ChargeStream S;
  std::thread Producer([&S] {
    for (uint64_t I = 0; I < N; ++I) {
      ChargeEvent E;
      E.EventKind = ChargeEvent::Kind::Charge;
      E.Sum = I + 1;
      E.Count = 1;
      S.push(E);
    }
    ChargeEvent Done;
    Done.EventKind = ChargeEvent::Kind::Done;
    S.push(Done);
  });
  StreamReplayer R(S);
  TickLedger L;
  L.beginStep(~Ticks(0));
  EXPECT_EQ(R.replay(L), StreamReplayer::Step::Done);
  Producer.join();
  EXPECT_EQ(L.totalCharged(), N * (N + 1) / 2);
  EXPECT_EQ(S.eventCount(), N + 1);
  EXPECT_GT(S.arenaBytes(), 0u);
  S.releaseArena();
}

// --- Engine integration: -spmp byte-identity -----------------------------

using FactoryMaker = std::function<ToolFactory()>;

struct NamedTool {
  const char *Name;
  FactoryMaker Make;
};

std::vector<NamedTool> toolMatrix() {
  return {
      {"icount-bb",
       [] { return makeIcountTool(IcountGranularity::BasicBlock); }},
      {"opcodemix", [] { return makeOpcodeMixTool(); }},
      {"dcache", [] { return makeDCacheTool(DCacheConfig()); }},
  };
}

std::vector<const char *> workloadMatrix() { return {"gzip", "vpr", "mcf"}; }

SpOptions hostOptions(const char *Workload, uint32_t Workers) {
  SpOptions Opts;
  Opts.SliceMs = 50; // many slices even at small scales
  Opts.Cpi = workloads::findWorkload(Workload).Cpi;
  Opts.HostWorkers = Workers;
  return Opts;
}

/// Asserts that \p Host reproduced \p Serial exactly on every
/// deterministic channel.
void expectIdentical(const SpRunReport &Serial, const SpRunReport &Host) {
  EXPECT_EQ(Host.FiniOutput, Serial.FiniOutput);
  EXPECT_EQ(Host.Output, Serial.Output);
  EXPECT_EQ(Host.WallTicks, Serial.WallTicks);
  EXPECT_EQ(Host.SleepTicks, Serial.SleepTicks);
  EXPECT_EQ(Host.NumSlices, Serial.NumSlices);
  EXPECT_EQ(Host.SliceInsts, Serial.SliceInsts);
  // Equality, not truth: fault runs legitimately lose slices (coverage
  // gaps), and the host path must reproduce even that verdict exactly.
  EXPECT_EQ(Host.PartitionOk, Serial.PartitionOk);
}

TEST(HostParallel, FiniMatrixIsByteIdenticalAcrossWorkerCounts) {
  CostModel Model;
  for (const char *Name : workloadMatrix()) {
    Program Prog =
        workloads::buildWorkload(workloads::findWorkload(Name), 0.1);
    for (const NamedTool &T : toolMatrix()) {
      SpRunReport Serial =
          runSuperPin(Prog, T.Make(), hostOptions(Name, 0), Model);
      EXPECT_TRUE(Serial.PartitionOk);
      EXPECT_EQ(Serial.HostWorkers, 0u);
      EXPECT_EQ(Serial.HostDispatchedSlices, 0u);
      for (uint32_t Workers : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE(std::string(Name) + " x " + T.Name + " x -spmp " +
                     std::to_string(Workers));
        SpRunReport Host =
            runSuperPin(Prog, T.Make(), hostOptions(Name, Workers), Model);
        expectIdentical(Serial, Host);
        // Explicit counts are clamped to 4x hardware concurrency, so on
        // small CI machines -spmp 8 may come up with fewer lanes.
        EXPECT_EQ(Host.HostWorkers, WorkerPool::clampWorkers(Workers));
        EXPECT_GT(Host.HostDispatchedSlices, 0u);
      }
    }
  }
}

TEST(HostParallel, AdversarialWorkerDelaysCannotPerturbOutput) {
  CostModel Model;
  Program Prog =
      workloads::buildWorkload(workloads::findWorkload("gzip"), 0.1);
  SpRunReport Serial = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock),
      hostOptions("gzip", 0), Model);

  // Three pathological schedules: early jobs finish last, one worker is
  // an order of magnitude slower than the rest, and jittered delays.
  std::vector<std::function<void(unsigned, uint64_t)>> Schedules = {
      [](unsigned, uint64_t Seq) {
        if (Seq < 8)
          std::this_thread::sleep_for(
              std::chrono::milliseconds(2 * (8 - Seq)));
      },
      [](unsigned Worker, uint64_t) {
        if (Worker == 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
      },
      [](unsigned, uint64_t Seq) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(300 * (Seq % 7)));
      },
  };
  for (size_t I = 0; I < Schedules.size(); ++I) {
    SCOPED_TRACE("schedule " + std::to_string(I));
    SpOptions Opts = hostOptions("gzip", 4);
    Opts.HostJobHook = Schedules[I];
    SpRunReport Host = runSuperPin(
        Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);
    expectIdentical(Serial, Host);
    EXPECT_GT(Host.HostDispatchedSlices, 0u);
  }
}

// --- Fault recovery on worker threads ------------------------------------

TEST(HostParallel, FaultLadderMatchesSerialRecovery) {
  CostModel Model;
  Program Prog =
      workloads::buildWorkload(workloads::findWorkload("gzip"), 0.1);
  for (uint64_t Seed : {1u, 7u, 11u}) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    fault::FaultPlan Plan(Seed, /*Rate=*/0.6);
    SpOptions SerialOpts = hostOptions("gzip", 0);
    SerialOpts.Fault = &Plan;
    SpRunReport Serial = runSuperPin(
        Prog, makeIcountTool(IcountGranularity::BasicBlock), SerialOpts,
        Model);
    SpOptions HostOpts = hostOptions("gzip", 4);
    HostOpts.Fault = &Plan;
    SpRunReport Host = runSuperPin(
        Prog, makeIcountTool(IcountGranularity::BasicBlock), HostOpts,
        Model);
    expectIdentical(Serial, Host);
    EXPECT_EQ(Host.FaultsInjected, Serial.FaultsInjected);
    EXPECT_EQ(Host.RetriedSlices, Serial.RetriedSlices);
    EXPECT_EQ(Host.QuarantinedSlices, Serial.QuarantinedSlices);
    EXPECT_EQ(Host.LostSlices, Serial.LostSlices);
    EXPECT_EQ(Host.BreakerTripped, Serial.BreakerTripped);
    EXPECT_GT(Serial.FaultsInjected, 0u) << "seed drew no faults; the "
                                            "ladder was not exercised";
  }
}

// --- Host fault containment ------------------------------------------------

/// The identity channels a *contained* run must still reproduce against the
/// serial run of the same flags. WallTicks is deliberately absent: the sim
/// thread charges SliceKillCost for the contained host attempt, a price the
/// serial baseline (whose pool never exists) does not pay.
void expectContainedIdentical(const SpRunReport &Serial,
                              const SpRunReport &Host) {
  EXPECT_EQ(Host.FiniOutput, Serial.FiniOutput);
  EXPECT_EQ(Host.Output, Serial.Output);
  EXPECT_EQ(Host.ExitCode, Serial.ExitCode);
  EXPECT_EQ(Host.NumSlices, Serial.NumSlices);
  EXPECT_EQ(Host.CoverageInsts, Serial.CoverageInsts);
  EXPECT_EQ(Host.PartitionOk, Serial.PartitionOk);
}

fault::FaultSpec hostFaultSpec(fault::FaultKind Kind, uint32_t Slice) {
  fault::FaultSpec S;
  S.Kind = Kind;
  S.Slice = Slice;
  S.AtInst = 5; // StreamTruncation: drop the stream after five events
  return S;
}

SpRunReport runGzip(const SpOptions &Opts) {
  CostModel Model;
  Program Prog =
      workloads::buildWorkload(workloads::findWorkload("gzip"), 0.1);
  return runSuperPin(Prog, makeIcountTool(IcountGranularity::BasicBlock),
                     Opts, Model);
}

TEST(HostFault, WorkerExceptionIsContainedByteIdentical) {
  fault::FaultPlan Plan;
  Plan.addHost(hostFaultSpec(fault::FaultKind::WorkerException, 1));
  SpOptions SerialOpts = hostOptions("gzip", 0);
  SerialOpts.Fault = &Plan;
  SpRunReport Serial = runGzip(SerialOpts);
  // Host faults model the execution substrate: without a pool there is
  // nothing to fail, so the serial run of the same flags is clean.
  EXPECT_EQ(Serial.HostFaultsInjected, 0u);
  EXPECT_TRUE(Serial.PartitionOk);
  for (uint32_t Workers : {2u, 4u, 8u}) {
    SCOPED_TRACE("-spmp " + std::to_string(Workers));
    SpOptions HostOpts = hostOptions("gzip", Workers);
    HostOpts.Fault = &Plan;
    SpRunReport Host = runGzip(HostOpts);
    expectContainedIdentical(Serial, Host);
    EXPECT_EQ(Host.HostFaultsInjected, 1u);
    EXPECT_EQ(Host.HostWorkerExceptions, 1u);
    EXPECT_GE(Host.HostFallbackSlices, 1u);
    EXPECT_FALSE(Host.HostDegraded);
  }
}

TEST(HostFault, HungWorkerIsKilledWithinTheWatchdogDeadline) {
  fault::FaultPlan Plan;
  Plan.addHost(hostFaultSpec(fault::FaultKind::WorkerHang, 1));
  SpOptions SerialOpts = hostOptions("gzip", 0);
  SerialOpts.Fault = &Plan;
  SpRunReport Serial = runGzip(SerialOpts);
  for (uint32_t Workers : {2u, 4u, 8u}) {
    SCOPED_TRACE("-spmp " + std::to_string(Workers));
    SpOptions HostOpts = hostOptions("gzip", Workers);
    HostOpts.Fault = &Plan;
    HostOpts.HostWatchdogMs = 50;
    auto T0 = std::chrono::steady_clock::now();
    SpRunReport Host = runGzip(HostOpts);
    double Secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
    expectContainedIdentical(Serial, Host);
    EXPECT_EQ(Host.HostFaultsInjected, 1u);
    EXPECT_EQ(Host.HostWatchdogKills, 1u);
    EXPECT_GE(Host.HostCancelledBodies, 1u);
    EXPECT_GE(Host.HostFallbackSlices, 1u);
    // The deadline is 50ms and the hung body polls the cancel token at
    // millisecond granularity; anything near this bound means the run
    // deadlocked on the dead worker rather than containing it. Generous
    // for loaded CI and sanitizer builds.
    EXPECT_LT(Secs, 30.0) << "containment stalled the run";
  }
}

TEST(HostFault, TruncatedStreamStarvesReplayAndIsContained) {
  fault::FaultPlan Plan;
  Plan.addHost(hostFaultSpec(fault::FaultKind::StreamTruncation, 1));
  SpOptions SerialOpts = hostOptions("gzip", 0);
  SerialOpts.Fault = &Plan;
  SpRunReport Serial = runGzip(SerialOpts);
  for (uint32_t Workers : {2u, 4u}) {
    SCOPED_TRACE("-spmp " + std::to_string(Workers));
    SpOptions HostOpts = hostOptions("gzip", Workers);
    HostOpts.Fault = &Plan;
    HostOpts.HostWatchdogMs = 50;
    SpRunReport Host = runGzip(HostOpts);
    expectContainedIdentical(Serial, Host);
    EXPECT_EQ(Host.HostFaultsInjected, 1u);
    EXPECT_EQ(Host.HostWatchdogKills, 1u);
    EXPECT_GE(Host.HostFallbackSlices, 1u);
  }
}

TEST(HostFault, BreakerDegradesPoolToSimExecution) {
  fault::FaultPlan Plan;
  Plan.addHost(hostFaultSpec(fault::FaultKind::WorkerException, 0));
  SpOptions SerialOpts = hostOptions("gzip", 0);
  SerialOpts.Fault = &Plan;
  SpRunReport Serial = runGzip(SerialOpts);
  SpOptions HostOpts = hostOptions("gzip", 4);
  HostOpts.Fault = &Plan;
  HostOpts.HostBreakerLimit = 1;
  SpRunReport Host = runGzip(HostOpts);
  expectContainedIdentical(Serial, Host);
  EXPECT_TRUE(Host.HostDegraded);
  EXPECT_EQ(Host.HostWorkerExceptions, 1u);
  // Every slice either went to the pool or fell back to the sim thread
  // (the contained slice did both), and the degraded pool stopped taking
  // new bodies.
  EXPECT_GE(Host.HostDispatchedSlices + Host.HostFallbackSlices,
            uint64_t(Host.NumSlices));
  EXPECT_LT(Host.HostDispatchedSlices, uint64_t(Host.NumSlices));
}

TEST(HostFault, SeededHostFaultSweepMatchesSerialOutput) {
  for (uint64_t Seed : {3u, 9u}) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    // Sim faults and host faults together: the sim ladder fires in both
    // runs, the host ladder only under -spmp, and the outputs must agree.
    fault::FaultPlan Plan(Seed, /*Rate=*/0.3);
    Plan.setHostRate(0.5);
    SpOptions SerialOpts = hostOptions("gzip", 0);
    SerialOpts.Fault = &Plan;
    SpRunReport Serial = runGzip(SerialOpts);
    SpOptions HostOpts = hostOptions("gzip", 4);
    HostOpts.Fault = &Plan;
    HostOpts.HostWatchdogMs = 100;
    SpRunReport Host = runGzip(HostOpts);
    expectContainedIdentical(Serial, Host);
    EXPECT_EQ(Host.FaultsInjected, Serial.FaultsInjected);
    EXPECT_EQ(Host.LostSlices, Serial.LostSlices);
    EXPECT_GT(Host.HostFaultsInjected, 0u)
        << "seed drew no host faults; containment was not exercised";
  }
}

// --- Option validation ----------------------------------------------------

TEST(HostParallel, ValidateRejectsImplausibleWorkerCounts) {
  SpOptions Opts;
  Opts.HostWorkers = 1025;
  EXPECT_NE(Opts.validate().find("-spmp"), std::string::npos);
  Opts.HostWorkers = 1024;
  EXPECT_TRUE(Opts.validate().empty());
  Opts.HostWorkers = SpOptions::HostWorkersAuto;
  EXPECT_TRUE(Opts.validate().empty());
  Opts.HostWorkers = 0;
  EXPECT_TRUE(Opts.validate().empty());
}

TEST(HostParallel, ValidateRejectsSharedCodeCacheCombination) {
  SpOptions Opts;
  Opts.HostWorkers = 2;
  Opts.SharedCodeCache = true;
  EXPECT_NE(Opts.validate().find("-spsharedcc"), std::string::npos);
  Opts.HostWorkers = 0;
  EXPECT_TRUE(Opts.validate().empty());
}

// --- Host-parallel replay -------------------------------------------------

TEST(HostParallel, ReplayMatchesSerialReplayExactly) {
  CostModel Model;
  Program Prog =
      workloads::buildWorkload(workloads::findWorkload("vpr"), 0.1);
  replay::CaptureWriter Writer;
  SpOptions Opts;
  Opts.SliceMs = 50;
  Opts.Cpi = workloads::findWorkload("vpr").Cpi;
  Opts.Capture = &Writer;
  SpRunReport Live = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);
  ASSERT_TRUE(Live.PartitionOk);
  replay::RunCapture Cap = Writer.take();
  ASSERT_GT(Cap.Slices.size(), 2u);

  replay::ReplayEngine SerialEngine(Cap, Model);
  replay::ReplayReport Serial = SerialEngine.replayAll(
      makeIcountTool(IcountGranularity::BasicBlock));

  for (unsigned Workers : {1u, 4u}) {
    SCOPED_TRACE("replay -spmp " + std::to_string(Workers));
    replay::ReplayEngine HostEngine(Cap, Model);
    HostEngine.setHostWorkers(Workers);
    replay::ReplayReport Host = HostEngine.replayAll(
        makeIcountTool(IcountGranularity::BasicBlock));
    EXPECT_EQ(Host.FiniOutput, Serial.FiniOutput);
    EXPECT_EQ(Host.ParityOk, Serial.ParityOk);
    EXPECT_EQ(Host.ParityFailed, 0u);
    EXPECT_EQ(Host.ReplayedInsts, Serial.ReplayedInsts);
    EXPECT_EQ(Host.PlaybackSyscalls, Serial.PlaybackSyscalls);
    EXPECT_EQ(Host.DuplicatedSyscalls, Serial.DuplicatedSyscalls);
  }
}

// --- Replay host-fault containment ---------------------------------------

replay::RunCapture captureVpr() {
  CostModel Model;
  Program Prog =
      workloads::buildWorkload(workloads::findWorkload("vpr"), 0.1);
  replay::CaptureWriter Writer;
  SpOptions Opts;
  Opts.SliceMs = 50;
  Opts.Cpi = workloads::findWorkload("vpr").Cpi;
  Opts.Capture = &Writer;
  SpRunReport Live = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);
  EXPECT_TRUE(Live.PartitionOk);
  return Writer.take();
}

TEST(HostParallel, ReplayContainsThrowingWorkerBodies) {
  CostModel Model;
  replay::RunCapture Cap = captureVpr();
  ASSERT_GT(Cap.Slices.size(), 2u);
  replay::ReplayEngine SerialEngine(Cap, Model);
  replay::ReplayReport Serial = SerialEngine.replayAll(
      makeIcountTool(IcountGranularity::BasicBlock));

  replay::ReplayEngine HostEngine(Cap, Model);
  HostEngine.setHostWorkers(4);
  HostEngine.setHostBodyHook([](uint32_t Num) {
    if (Num == 1)
      throw std::runtime_error("injected replay body fault");
  });
  replay::ReplayReport Host = HostEngine.replayAll(
      makeIcountTool(IcountGranularity::BasicBlock));
  EXPECT_EQ(Host.HostWorkerExceptions, 1u);
  EXPECT_EQ(Host.HostFallbackSlices, 1u);
  // The serial re-execution restores full parity: the contained slice is
  // indistinguishable from one that replayed on a worker.
  EXPECT_EQ(Host.FiniOutput, Serial.FiniOutput);
  EXPECT_EQ(Host.ParityOk, Serial.ParityOk);
  EXPECT_EQ(Host.ParityFailed, 0u);
  EXPECT_EQ(Host.ReplayedInsts, Serial.ReplayedInsts);
}

TEST(HostParallel, ReplayWatchdogRecoversHungWorker) {
  CostModel Model;
  replay::RunCapture Cap = captureVpr();
  ASSERT_GT(Cap.Slices.size(), 2u);
  replay::ReplayEngine SerialEngine(Cap, Model);
  replay::ReplayReport Serial = SerialEngine.replayAll(
      makeIcountTool(IcountGranularity::BasicBlock));

  replay::ReplayEngine HostEngine(Cap, Model);
  HostEngine.setHostWorkers(2);
  HostEngine.setHostWatchdogMs(50);
  // A cooperative hang: the body spins until the watchdog's cancellation
  // request, so the pool can still join cleanly after containment.
  HostEngine.setHostBodyHook([&HostEngine](uint32_t Num) {
    if (Num != 1)
      return;
    while (!HostEngine.hostCancelRequested().load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  auto T0 = std::chrono::steady_clock::now();
  replay::ReplayReport Host = HostEngine.replayAll(
      makeIcountTool(IcountGranularity::BasicBlock));
  double Secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  EXPECT_EQ(Host.HostWatchdogKills, 1u);
  EXPECT_EQ(Host.HostFallbackSlices, 1u);
  EXPECT_EQ(Host.FiniOutput, Serial.FiniOutput);
  EXPECT_EQ(Host.ParityOk, Serial.ParityOk);
  EXPECT_EQ(Host.ParityFailed, 0u);
  EXPECT_LT(Secs, 30.0) << "the hung worker stalled replay";
}

} // namespace
