//===- tests/replay_test.cpp - Capture & replay subsystem tests -----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The persistent capture pipeline end to end: syscall-effects wire format,
// playback round-trip parity per replayable syscall class, capture-log
// encode/decode/save/load, ReplayEngine parity against live runs (same
// tool and different tool, full and subset), and deferred-slice mode.
//
//===----------------------------------------------------------------------===//

#include "replay/CaptureWriter.h"
#include "replay/Log.h"
#include "replay/ReplayEngine.h"

#include "os/CostModel.h"
#include "os/Kernel.h"
#include "os/Process.h"
#include "superpin/Engine.h"
#include "support/BinaryStream.h"
#include "support/Json.h"
#include "tools/Icount.h"
#include "tools/MemTrace.h"
#include "vm/Interpreter.h"
#include "workloads/Spec2000.h"

#include "TestPrograms.h"

#include "gtest/gtest.h"

#include <cstdio>

using namespace spin;
using namespace spin::os;
using namespace spin::replay;
using namespace spin::sp;
using namespace spin::test;
using namespace spin::tools;
using namespace spin::vm;

namespace {

// --- SyscallEffects wire format -----------------------------------------

TEST(EffectsCodec, RoundTripIsLossless) {
  SyscallEffects Eff;
  Eff.Number = uint64_t(Sys::Read);
  Eff.RetVal = (uint64_t(1) << 53) + 1; // beyond double-exact range
  Eff.ProcessExited = false;
  Eff.MemWrites.push_back({~uint64_t(0) - 7, {1, 2, 3, 4, 5}});
  Eff.MemWrites.push_back({AddressLayout::DataBase, {}});

  ByteWriter W;
  encodeSyscallEffects(Eff, W);
  ByteReader R(W.buffer());
  SyscallEffects Back = decodeSyscallEffects(R);
  EXPECT_TRUE(R.exhausted());
  EXPECT_EQ(Back, Eff);
}

TEST(EffectsCodec, TruncationLatchesError) {
  SyscallEffects Eff;
  Eff.Number = uint64_t(Sys::Write);
  Eff.MemWrites.push_back({0x1000, {9, 9, 9}});
  ByteWriter W;
  encodeSyscallEffects(Eff, W);
  std::vector<uint8_t> Bytes = W.take();
  Bytes.resize(Bytes.size() - 2);
  ByteReader R(Bytes);
  decodeSyscallEffects(R);
  EXPECT_TRUE(R.failed());
}

// --- playbackSyscall round-trip parity per replayable class -------------

/// Stops a fresh process at its first syscall with r0..r3 loaded.
struct SyscallFixture {
  Program Prog;
  Process Proc;

  explicit SyscallFixture(std::string_view Body)
      : Prog(mustAssemble(std::string("main:\n") + std::string(Body) +
                              "\n  syscall\n  syscall\n  halt\n",
                          "replayfix")),
        Proc(Process::create(Prog)) {
    runToSyscall();
  }

  void runToSyscall() {
    Interpreter I(Prog, Proc.Cpu, Proc.Mem);
    RunResult R = I.run(100000);
    ASSERT_EQ(R.Reason, StopReason::Syscall);
  }
};

/// Services the pending syscall on the original, encodes + decodes the
/// effects, plays them back on a pre-syscall fork, and requires the two
/// processes to end bit-identical in registers and all touched memory.
void expectPlaybackParity(SyscallFixture &F, const SystemContext &Ctx) {
  Process Replica = F.Proc.fork(2);
  SyscallEffects Eff;
  serviceSyscall(F.Proc, Ctx, &Eff);

  ByteWriter W;
  encodeSyscallEffects(Eff, W);
  ByteReader R(W.buffer());
  SyscallEffects Wire = decodeSyscallEffects(R);
  ASSERT_TRUE(R.exhausted());
  ASSERT_EQ(Wire, Eff);

  playbackSyscall(Replica, Wire);
  EXPECT_EQ(Replica.Cpu, F.Proc.Cpu); // full register file + pc
  EXPECT_EQ(Replica.Status == ProcStatus::Exited,
            F.Proc.Status == ProcStatus::Exited);
  for (const auto &[Addr, Bytes] : Wire.MemWrites)
    for (uint64_t Off = 0; Off != Bytes.size(); ++Off) {
      uint8_t Byte = 0;
      Replica.Mem.readBytes(Addr + Off, &Byte, 1);
      uint8_t Orig = 0;
      F.Proc.Mem.readBytes(Addr + Off, &Orig, 1);
      EXPECT_EQ(Byte, Orig) << "memory diverged at " << Addr + Off;
    }
}

TEST(Playback, WriteParity) {
  SyscallFixture F("  movi r0, 1\n  movi r1, 1\n  movi r2, 67108864\n"
                   "  movi r3, 16");
  F.Proc.Mem.writeBytes(AddressLayout::DataBase, "0123456789abcdef", 16);
  SystemContext Ctx;
  Ctx.SuppressOutput = true;
  expectPlaybackParity(F, Ctx);
  EXPECT_EQ(F.Proc.Cpu.Regs[0], 16u);
}

TEST(Playback, ReadParity) {
  // open() a synthetic file first, then read 64 bytes from it.
  SyscallFixture F("  movi r1, 67108864\n  movi r0, 9");
  F.Proc.Mem.writeBytes(AddressLayout::DataBase, "input", 6);
  SystemContext Ctx;
  serviceSyscall(F.Proc, Ctx, nullptr);
  uint64_t Fd = F.Proc.Cpu.Regs[0];
  F.runToSyscall();
  F.Proc.Cpu.Regs[0] = uint64_t(Sys::Read);
  F.Proc.Cpu.Regs[1] = Fd;
  F.Proc.Cpu.Regs[2] = AddressLayout::DataBase + 0x100;
  F.Proc.Cpu.Regs[3] = 64;
  expectPlaybackParity(F, Ctx);
}

TEST(Playback, GetTimeMsParity) {
  SyscallFixture F("  movi r0, 6");
  SystemContext Ctx;
  Ctx.NowMs = 123456789;
  expectPlaybackParity(F, Ctx);
  EXPECT_EQ(F.Proc.Cpu.Regs[0], 123456789u);
}

TEST(Playback, GetPidParity) {
  // getpid is why playback exists: a replica fork would compute a
  // *different* pid by re-executing; playback pins the master's.
  SyscallFixture F("  movi r0, 7");
  SystemContext Ctx;
  expectPlaybackParity(F, Ctx);
  EXPECT_EQ(F.Proc.Cpu.Regs[0], 1u);
}

TEST(Playback, ExitParity) {
  SyscallFixture F("  movi r0, 0\n  movi r1, 41");
  SystemContext Ctx;
  expectPlaybackParity(F, Ctx);
  EXPECT_EQ(F.Proc.ExitCode, 41);
}

// --- Capture log format --------------------------------------------------

SpOptions captureOptions(CaptureSink *Sink, uint32_t MaxSlices = 8,
                         bool Defer = false) {
  SpOptions Opts;
  Opts.SliceMs = 50;
  Opts.MaxSlices = MaxSlices;
  Opts.Capture = Sink;
  Opts.DeferSlices = Defer;
  return Opts;
}

RunCapture captureWorkload(const std::string &Name, double Scale = 0.1,
                           uint64_t *LiveIcount = nullptr) {
  Program Prog =
      workloads::buildWorkload(workloads::findWorkload(Name), Scale);
  CaptureWriter Writer;
  auto Result = std::make_shared<IcountResult>();
  SpOptions Opts = captureOptions(&Writer);
  Opts.Cpi = workloads::findWorkload(Name).Cpi;
  CostModel Model;
  SpRunReport Rep = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock, Result), Opts,
      Model);
  EXPECT_TRUE(Rep.PartitionOk) << Name;
  EXPECT_GT(Rep.NumSlices, 2u) << Name << " should actually slice";
  if (LiveIcount)
    *LiveIcount = Result->Total;
  return Writer.take();
}

TEST(Log, EncodeDecodeRoundTrip) {
  RunCapture Cap = captureWorkload("vpr");
  std::vector<SliceIndexEntry> Index;
  std::vector<uint8_t> Bytes = encodeCapture(Cap, &Index);
  ASSERT_EQ(Index.size(), Cap.Slices.size());

  std::string Err;
  std::optional<RunCapture> Back = decodeCapture(Bytes, &Err);
  ASSERT_TRUE(Back.has_value()) << Err;
  EXPECT_EQ(Back->Prog.Name, Cap.Prog.Name);
  EXPECT_EQ(Back->Prog.Text.size(), Cap.Prog.Text.size());
  EXPECT_EQ(Back->Prog.Symbols, Cap.Prog.Symbols);
  EXPECT_EQ(Back->MasterInsts, Cap.MasterInsts);
  EXPECT_EQ(Back->SliceInsts, Cap.SliceInsts);
  EXPECT_EQ(Back->Output, Cap.Output);
  ASSERT_EQ(Back->Slices.size(), Cap.Slices.size());
  for (size_t I = 0; I != Cap.Slices.size(); ++I) {
    EXPECT_EQ(Back->Slices[I].StartStateHash, Cap.Slices[I].StartStateHash);
    EXPECT_EQ(Back->Slices[I].ExpectedInsts, Cap.Slices[I].ExpectedInsts);
    EXPECT_EQ(Back->Slices[I].Sys.size(), Cap.Slices[I].Sys.size());
  }
  // Decode -> re-encode must be byte-identical (canonical form).
  EXPECT_EQ(encodeCapture(*Back), Bytes);
}

TEST(Log, CorruptionAndTruncationRejected) {
  RunCapture Cap = captureWorkload("vpr");
  std::vector<uint8_t> Bytes = encodeCapture(Cap);
  std::string Err;

  std::vector<uint8_t> Flipped = Bytes;
  Flipped[Flipped.size() / 2] ^= 0x40;
  EXPECT_FALSE(decodeCapture(Flipped, &Err).has_value());
  EXPECT_NE(Err.find("checksum"), std::string::npos);

  std::vector<uint8_t> Short(Bytes.begin(), Bytes.end() - 9);
  EXPECT_FALSE(decodeCapture(Short, &Err).has_value());

  std::vector<uint8_t> BadMagic = Bytes;
  BadMagic[0] ^= 0xff;
  EXPECT_FALSE(decodeCapture(BadMagic, &Err).has_value());
}

TEST(Log, SaveLoadAndSidecar) {
  RunCapture Cap = captureWorkload("vpr");
  std::string Path =
      std::string(::testing::TempDir()) + "replay_test_save.sprl";
  std::string Err;
  ASSERT_TRUE(saveCapture(Cap, Path, &Err)) << Err;

  std::optional<RunCapture> Back = loadCapture(Path, &Err);
  ASSERT_TRUE(Back.has_value()) << Err;
  EXPECT_EQ(encodeCapture(*Back), encodeCapture(Cap));

  // The sidecar is valid JSON whose index matches the capture, with
  // uint64 counters surviving the parse exactly.
  std::FILE *F = std::fopen(sidecarPath(Path).c_str(), "rb");
  ASSERT_NE(F, nullptr);
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  std::optional<JsonValue> Doc = parseJson(Text, &Err);
  ASSERT_TRUE(Doc.has_value()) << Err;
  EXPECT_EQ(Doc->get("format")->asString(), "sprl");
  EXPECT_EQ(Doc->get("masterinsts")->asUInt(), Cap.MasterInsts);
  ASSERT_EQ(Doc->get("slices")->array().size(), Cap.Slices.size());
  for (size_t I = 0; I != Cap.Slices.size(); ++I) {
    const JsonValue &S = Doc->get("slices")->array()[I];
    EXPECT_EQ(S.get("num")->asUInt(), Cap.Slices[I].Num);
    EXPECT_EQ(S.get("insts")->asUInt(), Cap.Slices[I].ExpectedInsts);
    EXPECT_EQ(S.get("end")->asString(), endKindName(Cap.Slices[I].EndKind));
  }
  std::remove(Path.c_str());
  std::remove(sidecarPath(Path).c_str());
}

// --- ReplayEngine parity against live runs ------------------------------

TEST(Replay, SameToolReproducesLiveRunExactly) {
  // The ISSUE acceptance bar: for several workloads, replaying every slice
  // with the capture-time tool reproduces the live per-slice icounts and
  // the merged total exactly.
  CostModel Model;
  for (const char *Name : {"gcc", "mcf", "vpr"}) {
    uint64_t LiveIcount = 0;
    RunCapture Cap = captureWorkload(Name, 0.1, &LiveIcount);

    auto Result = std::make_shared<IcountResult>();
    ReplayEngine Engine(Cap, Model);
    ReplayReport Rep = Engine.replayAll(
        makeIcountTool(IcountGranularity::BasicBlock, Result));

    EXPECT_TRUE(Rep.allOk()) << Name;
    EXPECT_EQ(Rep.SlicesReplayed, Cap.Slices.size()) << Name;
    EXPECT_EQ(Rep.ReplayedInsts, Cap.SliceInsts) << Name;
    EXPECT_EQ(Result->Total, LiveIcount)
        << Name << ": replayed merge must equal the live merged icount";
    for (const ReplaySliceResult &R : Rep.Slices) {
      EXPECT_TRUE(R.ParityOk) << Name << " slice " << R.Num;
      EXPECT_EQ(R.RetiredInsts, Cap.Slices[R.Num].RetiredInsts)
          << Name << " slice " << R.Num;
    }
  }
}

TEST(Replay, DifferentToolCompletesWithoutDivergence) {
  // Replay with a tool the capture never saw (icount -> memtrace): every
  // slice must still track the recorded windows with no playback
  // divergence.
  RunCapture Cap = captureWorkload("gcc");
  auto Trace = std::make_shared<MemTraceResult>();
  CostModel Model;
  ReplayEngine Engine(Cap, Model);
  ReplayReport Rep = Engine.replayAll(makeMemTraceTool(Trace));
  EXPECT_TRUE(Rep.allOk());
  EXPECT_EQ(Rep.ReplayedInsts, Cap.SliceInsts);
  for (const ReplaySliceResult &R : Rep.Slices)
    EXPECT_FALSE(R.Diverged) << "slice " << R.Num << ": " << R.Note;
  EXPECT_FALSE(Trace->Records.empty());
}

TEST(Replay, SubsetAndOutOfOrderRequests) {
  RunCapture Cap = captureWorkload("vpr");
  ASSERT_GE(Cap.Slices.size(), 4u);
  CostModel Model;
  ReplayEngine Engine(Cap, Model);
  // Out of order + duplicate: the engine sorts and dedups, and the
  // fast-forward restarts cleanly when asked to go backwards.
  ReplayReport Rep =
      Engine.replay(makeIcountTool(IcountGranularity::BasicBlock),
                    {3, 1, 1});
  EXPECT_EQ(Rep.SlicesReplayed, 2u);
  EXPECT_TRUE(Rep.allOk());
  uint64_t Expected =
      Cap.Slices[1].RetiredInsts + Cap.Slices[3].RetiredInsts;
  EXPECT_EQ(Rep.ReplayedInsts, Expected);

  // A second request going backwards over the same engine.
  ReplayReport Rep2 =
      Engine.replay(makeIcountTool(IcountGranularity::BasicBlock), {0});
  EXPECT_TRUE(Rep2.allOk());
  EXPECT_EQ(Rep2.ReplayedInsts, Cap.Slices[0].RetiredInsts);
}

TEST(Replay, ReplayIsDeterministic) {
  RunCapture Cap = captureWorkload("vpr");
  CostModel Model;
  ReplayEngine Engine(Cap, Model);
  auto R1 = std::make_shared<IcountResult>();
  auto R2 = std::make_shared<IcountResult>();
  ReplayReport A =
      Engine.replayAll(makeIcountTool(IcountGranularity::BasicBlock, R1));
  ReplayReport B =
      Engine.replayAll(makeIcountTool(IcountGranularity::BasicBlock, R2));
  EXPECT_EQ(A.ReplayedInsts, B.ReplayedInsts);
  EXPECT_EQ(A.FiniOutput, B.FiniOutput);
  EXPECT_EQ(R1->Total, R2->Total);
}

// --- Deferred-slice mode (-spdefer) -------------------------------------

TEST(Defer, SpillsInsteadOfStallingAndPreservesResults) {
  Program Prog =
      workloads::buildWorkload(workloads::findWorkload("gcc"), 0.1);
  CostModel Model;

  // Baseline: saturated at 2 workers, master stalls.
  auto BaseResult = std::make_shared<IcountResult>();
  SpOptions BaseOpts = captureOptions(nullptr, /*MaxSlices=*/2);
  SpRunReport Base = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock, BaseResult),
      BaseOpts, Model);
  ASSERT_GT(Base.SleepTicks, 0u) << "baseline must actually saturate";

  // Deferred: same limit, windows spill instead.
  auto DeferResult = std::make_shared<IcountResult>();
  SpOptions DeferOpts = captureOptions(nullptr, /*MaxSlices=*/2,
                                       /*Defer=*/true);
  SpRunReport Defer = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock, DeferResult),
      DeferOpts, Model);

  EXPECT_EQ(Defer.SleepTicks, 0u) << "-spdefer must never stall the master";
  EXPECT_GT(Defer.SpilledSlices, 0u);
  EXPECT_EQ(Defer.DrainedSlices, Defer.SpilledSlices);
  EXPECT_EQ(Defer.ReplayParityOk, Defer.DrainedSlices)
      << "every drained slice must reproduce its live window";
  EXPECT_TRUE(Defer.PartitionOk);
  EXPECT_EQ(Defer.SliceInsts, Base.SliceInsts);
  EXPECT_EQ(DeferResult->Total, BaseResult->Total)
      << "deferred execution must not change tool results";
  EXPECT_EQ(Defer.Output, Base.Output);
  // Spilling trades master progress for a longer post-exit drain.
  EXPECT_GT(Defer.PipelineTicks, Base.PipelineTicks);
}

TEST(Defer, DeferredCaptureReplaysWithParity) {
  Program Prog =
      workloads::buildWorkload(workloads::findWorkload("vpr"), 0.05);
  CaptureWriter Writer;
  SpOptions Opts = captureOptions(&Writer, /*MaxSlices=*/2, /*Defer=*/true);
  CostModel Model;
  SpRunReport Rep = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);
  ASSERT_TRUE(Rep.PartitionOk);
  RunCapture Cap = Writer.take();
  EXPECT_EQ(Cap.SpilledSlices, Rep.SpilledSlices);
  uint64_t SpilledInLog = 0;
  for (const SliceCaptureData &S : Cap.Slices)
    SpilledInLog += S.Spilled ? 1 : 0;
  EXPECT_EQ(SpilledInLog, Rep.SpilledSlices);

  ReplayEngine Engine(Cap, Model);
  ReplayReport RRep =
      Engine.replayAll(makeIcountTool(IcountGranularity::BasicBlock));
  EXPECT_TRUE(RRep.allOk());
  EXPECT_EQ(RRep.ReplayedInsts, Cap.SliceInsts);
}

// --- Lenient loading & corruption diagnosis ------------------------------

std::vector<uint8_t> slurpFile(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr) << Path;
  if (!F)
    return Bytes;
  uint8_t Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(F);
  return Bytes;
}

void spewFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr) << Path;
  ASSERT_EQ(std::fwrite(Bytes.data(), 1, Bytes.size(), F), Bytes.size());
  std::fclose(F);
}

/// Rewrites the trailing FNV-1a so record-level damage survives the
/// whole-file checksum gate (modelling a log corrupted before the
/// checksum was stamped, or an attacker-free single-record bit rot the
/// per-record sanity check must still catch).
void restampChecksum(std::vector<uint8_t> &Bytes) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I != Bytes.size() - 8; ++I) {
    H ^= Bytes[I];
    H *= 0x100000001b3ULL;
  }
  for (size_t I = 0; I != 8; ++I)
    Bytes[Bytes.size() - 8 + I] = static_cast<uint8_t>(H >> (8 * I));
}

TEST(Lenient, CleanLoadReportsOkDiagnosis) {
  RunCapture Cap = captureWorkload("vpr");
  std::string Path = std::string(::testing::TempDir()) + "lenient_clean.sprl";
  std::string Err;
  ASSERT_TRUE(saveCapture(Cap, Path, &Err)) << Err;

  LogDiagnosis Diag;
  std::vector<uint32_t> Skipped;
  std::optional<RunCapture> Back =
      loadCaptureLenient(Path, /*SkipCorrupt=*/false, &Diag, &Skipped);
  ASSERT_TRUE(Back.has_value()) << Diag.Reason;
  EXPECT_TRUE(Diag.ok());
  EXPECT_EQ(Diag.FileSize, encodeCapture(Cap).size());
  EXPECT_TRUE(Skipped.empty());
  EXPECT_EQ(encodeCapture(*Back), encodeCapture(Cap));
}

TEST(Lenient, ChecksumMismatchIsDiagnosed) {
  RunCapture Cap = captureWorkload("vpr");
  std::string Path = std::string(::testing::TempDir()) + "lenient_cksum.sprl";
  std::string Err;
  ASSERT_TRUE(saveCapture(Cap, Path, &Err)) << Err;
  std::vector<uint8_t> Bytes = slurpFile(Path);
  Bytes[Bytes.size() / 2] ^= 0x40;
  spewFile(Path, Bytes);

  LogDiagnosis Diag;
  EXPECT_FALSE(
      loadCaptureLenient(Path, /*SkipCorrupt=*/false, &Diag).has_value());
  EXPECT_FALSE(Diag.ok());
  EXPECT_TRUE(Diag.ChecksumMismatch);
  EXPECT_NE(Diag.ExpectedChecksum, Diag.ActualChecksum);
  EXPECT_NE(Diag.Reason.find("checksum"), std::string::npos);
  EXPECT_EQ(Diag.Offset, Bytes.size() - 8)
      << "the mismatch is pinned to the trailing checksum";
}

TEST(Lenient, CorruptRecordIsLocatedAndSkipCorruptResyncs) {
  RunCapture Cap = captureWorkload("vpr");
  ASSERT_GE(Cap.Slices.size(), 4u);
  std::vector<SliceIndexEntry> Index;
  encodeCapture(Cap, &Index);
  std::string Path = std::string(::testing::TempDir()) + "lenient_rec.sprl";
  std::string Err;
  ASSERT_TRUE(saveCapture(Cap, Path, &Err)) << Err;

  // Smash slice record 2's leading Num field and restamp the trailing
  // checksum: only the per-record sanity check can catch this now.
  std::vector<uint8_t> Bytes = slurpFile(Path);
  Bytes[Index[2].Offset] ^= 0xff;
  restampChecksum(Bytes);
  spewFile(Path, Bytes);

  // Strict mode refuses the log but pinpoints the damage.
  LogDiagnosis Diag;
  EXPECT_FALSE(
      loadCaptureLenient(Path, /*SkipCorrupt=*/false, &Diag).has_value());
  EXPECT_FALSE(Diag.ok());
  EXPECT_EQ(Diag.RecordIndex, 2u);
  EXPECT_EQ(Diag.Offset, Index[2].Offset);
  EXPECT_NE(Diag.Reason.find("corrupt slice record 2"), std::string::npos);

  // -skip-corrupt recovers every other record by resyncing to the next
  // sidecar offset past the damage.
  std::vector<uint32_t> Skipped;
  std::optional<RunCapture> Back =
      loadCaptureLenient(Path, /*SkipCorrupt=*/true, &Diag, &Skipped);
  ASSERT_TRUE(Back.has_value()) << Diag.Reason;
  ASSERT_EQ(Skipped.size(), 1u);
  EXPECT_EQ(Skipped[0], 2u);
  ASSERT_EQ(Back->Slices.size(), Cap.Slices.size() - 1);
  for (const SliceCaptureData &S : Back->Slices)
    EXPECT_NE(S.Num, 2u);
  // The survivors decode to exactly their original content.
  size_t J = 0;
  for (size_t I = 0; I != Cap.Slices.size(); ++I) {
    if (I == 2)
      continue;
    EXPECT_EQ(Back->Slices[J].Num, Cap.Slices[I].Num);
    EXPECT_EQ(Back->Slices[J].ExpectedInsts, Cap.Slices[I].ExpectedInsts);
    EXPECT_EQ(Back->Slices[J].Sys.size(), Cap.Slices[I].Sys.size());
    ++J;
  }
}

TEST(Lenient, TruncatedFileIsDiagnosed) {
  RunCapture Cap = captureWorkload("vpr");
  std::string Path = std::string(::testing::TempDir()) + "lenient_trunc.sprl";
  std::string Err;
  ASSERT_TRUE(saveCapture(Cap, Path, &Err)) << Err;
  std::vector<uint8_t> Bytes = slurpFile(Path);
  Bytes.resize(12); // shorter than header + checksum
  spewFile(Path, Bytes);

  LogDiagnosis Diag;
  EXPECT_FALSE(
      loadCaptureLenient(Path, /*SkipCorrupt=*/true, &Diag).has_value());
  EXPECT_FALSE(Diag.ok());
  EXPECT_TRUE(Diag.Truncated);
  EXPECT_EQ(Diag.FileSize, 12u);
}

TEST(Lenient, MissingFileIsDiagnosed) {
  LogDiagnosis Diag;
  EXPECT_FALSE(loadCaptureLenient(std::string(::testing::TempDir()) +
                                      "lenient_no_such_file.sprl",
                                  /*SkipCorrupt=*/true, &Diag)
                   .has_value());
  EXPECT_FALSE(Diag.ok());
  EXPECT_NE(Diag.Reason.find("cannot open"), std::string::npos);
}

} // namespace
