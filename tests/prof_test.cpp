//===- tests/prof_test.cpp - Overhead-attribution profiler tests ----------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The src/prof subsystem end to end: the exact per-lane attribution
// invariant (consumed == native + attributed) on live SuperPin, serial
// Pin, and replay runs; tick- and output-identity of runs with the
// profiler detached; the spprof-v1 JSON and folded-stack exports; and the
// BENCH_*.json regression gate, including the deliberate >10% perturbation
// the gate must catch.
//
//===----------------------------------------------------------------------===//

#include "prof/Bench.h"
#include "prof/Profile.h"

#include "obs/Metrics.h"
#include "fault/FaultPlan.h"
#include "pin/Runner.h"
#include "replay/CaptureWriter.h"
#include "replay/Log.h"
#include "replay/ReplayEngine.h"
#include "superpin/Engine.h"
#include "superpin/Reporting.h"
#include "support/Json.h"
#include "support/RawOstream.h"
#include "support/Statistic.h"
#include "tools/Icount.h"
#include "workloads/Spec2000.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace spin;
using namespace spin::os;
using namespace spin::sp;
using namespace spin::tools;

namespace {

// --- Fixtures ------------------------------------------------------------

vm::Program workload(const std::string &Name, double Scale = 0.1) {
  return workloads::buildWorkload(workloads::findWorkload(Name), Scale);
}

SpOptions profOptions(const std::string &Name,
                      prof::ProfileCollector *Profile) {
  SpOptions Opts;
  Opts.SliceMs = 50;
  Opts.Cpi = workloads::findWorkload(Name).Cpi;
  Opts.Profile = Profile;
  return Opts;
}

SpRunReport runProfiled(const std::string &Name,
                        prof::ProfileCollector &Profile,
                        std::shared_ptr<IcountResult> Count = nullptr) {
  CostModel Model;
  return runSuperPin(workload(Name),
                     makeIcountTool(IcountGranularity::BasicBlock, Count),
                     profOptions(Name, &Profile), Model);
}

void expectLaneInvariant(const prof::SliceProfile &P, const char *Lane) {
  EXPECT_EQ(P.consumedTicks(), P.nativeTicks() + P.attributedTicks())
      << "lane " << Lane;
}

// --- The attribution invariant -------------------------------------------

TEST(Profile, LaneInvariantHoldsExactly) {
  // The acceptance bound is 100% +/- 0.1% of virtual slice time; the
  // implementation meets it exactly because every TickLedger charge site
  // reports a paired attribution.
  for (const char *Name : {"gzip", "gcc", "mcf"}) {
    prof::ProfileCollector Profile;
    SpRunReport Rep = runProfiled(Name, Profile);
    EXPECT_TRUE(Rep.PartitionOk) << Name;
    EXPECT_GT(Rep.NumSlices, 1u) << Name;

    expectLaneInvariant(Profile.masterProfile(), "master");
    EXPECT_EQ(Profile.slices().size(), Rep.NumSlices) << Name;
    for (const auto &[Num, P] : Profile.slices()) {
      expectLaneInvariant(P, ("slice-" + std::to_string(Num)).c_str());
      // Slices execute fully instrumented: no native bucket.
      EXPECT_EQ(P.nativeTicks(), 0u) << Name << " slice " << Num;
      EXPECT_GT(P.attributedTicks(), 0u) << Name << " slice " << Num;
    }
    EXPECT_EQ(Profile.totalConsumed(),
              Profile.totalNative() + Profile.totalAttributed())
        << Name;

    Ticks CauseSum = 0;
    for (unsigned I = 0; I != prof::NumCauses; ++I)
      CauseSum += Profile.totalCause(static_cast<prof::Cause>(I));
    EXPECT_EQ(CauseSum, Profile.totalAttributed()) << Name;
  }
}

TEST(Profile, SerialPinLaneInvariant) {
  CostModel Model;
  vm::Program Prog = workload("gzip");
  prof::ProfileCollector Profile;
  pin::PinVmConfig Cfg;
  Cfg.Prof = &Profile.master();
  pin::RunReport Rep = pin::runSerialPin(
      Prog, Model, 100, makeIcountTool(IcountGranularity::BasicBlock), Cfg);
  EXPECT_GT(Rep.Insts, 0u);
  expectLaneInvariant(Profile.masterProfile(), "serial-pin");
  // Serial Pin pays the kernel services a native run would also pay; the
  // rest is instrumentation overhead.
  EXPECT_GT(Profile.masterProfile().attributedTicks(), 0u);
}

TEST(Profile, ReplayLaneInvariant) {
  CostModel Model;
  replay::CaptureWriter Writer;
  SpOptions Opts = profOptions("vpr", nullptr);
  Opts.Capture = &Writer;
  SpRunReport Live = runSuperPin(
      workload("vpr"), makeIcountTool(IcountGranularity::BasicBlock), Opts,
      Model);
  ASSERT_TRUE(Live.PartitionOk);
  replay::RunCapture Cap = Writer.take();

  prof::ProfileCollector Profile;
  replay::ReplayEngine Engine(Cap, Model);
  Engine.setProfile(&Profile);
  replay::ReplayReport Rep =
      Engine.replayAll(makeIcountTool(IcountGranularity::BasicBlock));
  EXPECT_TRUE(Rep.allOk());

  expectLaneInvariant(Profile.masterProfile(), "replay-master");
  EXPECT_EQ(Profile.slices().size(), Rep.SlicesReplayed);
  for (const auto &[Num, P] : Profile.slices())
    expectLaneInvariant(P, ("replay-slice-" + std::to_string(Num)).c_str());
}

// --- Detached-profiler identity ------------------------------------------

TEST(Profile, DetachedRunsAreTickIdentical) {
  auto CountOn = std::make_shared<IcountResult>();
  auto CountOff = std::make_shared<IcountResult>();
  prof::ProfileCollector Profile;
  SpRunReport On = runProfiled("gzip", Profile, CountOn);

  CostModel Model;
  SpRunReport Off = runSuperPin(
      workload("gzip"), makeIcountTool(IcountGranularity::BasicBlock, CountOff),
      profOptions("gzip", nullptr), Model);

  EXPECT_EQ(On.WallTicks, Off.WallTicks);
  EXPECT_EQ(On.NativeTicks, Off.NativeTicks);
  EXPECT_EQ(On.NumSlices, Off.NumSlices);
  EXPECT_EQ(On.Output, Off.Output);
  EXPECT_EQ(On.FiniOutput, Off.FiniOutput);
  EXPECT_EQ(CountOn->Total, CountOff->Total);

  // The spmetrics-v1 registry export is byte-identical too: prof.* names
  // only appear when the collector's exportStatistics is explicitly asked
  // for.
  auto MetricsJson = [](const SpRunReport &Rep) {
    StatisticRegistry Stats;
    sp::exportStatistics(Rep, Stats);
    std::string Doc;
    RawStringOstream OS(Doc);
    obs::writeRegistryJson(Stats, OS);
    return Doc;
  };
  EXPECT_EQ(MetricsJson(On), MetricsJson(Off));
}

// --- Attempt rewind -------------------------------------------------------

TEST(Profile, RewindFoldsAttemptIntoRetryWaste) {
  prof::SliceProfile P;
  P.charge(prof::Cause::SigSearch, 100); // survives the rewind
  P.noteBlock(0x40, 10, 500, 200, 1);
  prof::SliceProfile Snapshot = P;

  P.charge(prof::Cause::JitExecute, 400);
  P.charge(prof::Cause::JitCompile, 50);
  P.noteBlock(0x80, 5, 300, 100, 1);
  P.noteConsumed(550);

  P.rewindAttempt(Snapshot);
  EXPECT_EQ(P.cause(prof::Cause::SigSearch), 100u);
  EXPECT_EQ(P.cause(prof::Cause::JitExecute), 0u);
  EXPECT_EQ(P.cause(prof::Cause::JitCompile), 0u);
  EXPECT_EQ(P.cause(prof::Cause::RetryWaste), 450u);
  // Total attribution is conserved: the ticks were spent, only re-judged.
  EXPECT_EQ(P.attributedTicks(), 550u);
  // Block records revert to the snapshot; the failed attempt's blocks are
  // charged as waste, not as per-block cost.
  EXPECT_EQ(P.blocks().size(), 1u);
  EXPECT_EQ(P.blocks().count(0x40), 1u);
}

TEST(Profile, FaultInjectionKeepsInvariant) {
  prof::ProfileCollector Profile;
  SpOptions Opts = profOptions("gzip", &Profile);
  fault::FaultPlan Plan(/*Seed=*/17, /*Rate=*/0.3);
  Opts.Fault = &Plan;
  CostModel Model;
  SpRunReport Rep = runSuperPin(
      workload("gzip"), makeIcountTool(IcountGranularity::BasicBlock), Opts,
      Model);
  ASSERT_GT(Rep.NumSlices, 1u);
  expectLaneInvariant(Profile.masterProfile(), "master");
  for (const auto &[Num, P] : Profile.slices())
    expectLaneInvariant(P, ("slice-" + std::to_string(Num)).c_str());
  if (Rep.RetriedSlices > 0)
    EXPECT_GT(Profile.totalCause(prof::Cause::RetryWaste), 0u)
        << "failed attempts must surface as retry.waste";
}

// --- Exports ---------------------------------------------------------------

TEST(Profile, JsonExportParsesAndSharesSum) {
  prof::ProfileCollector Profile;
  runProfiled("gcc", Profile);

  std::string Doc;
  {
    RawStringOstream OS(Doc);
    Profile.writeJson(OS, 10);
  }
  std::string Err;
  std::optional<JsonValue> V = parseJson(Doc, &Err);
  ASSERT_TRUE(V.has_value()) << Err;
  EXPECT_EQ(V->get("schema")->asString(), prof::ProfileSchema);
  EXPECT_EQ(V->get("total_ticks")->asUInt(),
            V->get("native_ticks")->asUInt() +
                V->get("attributed_ticks")->asUInt());

  double ShareSum = 0.0;
  const JsonValue *Causes = V->get("causes");
  ASSERT_NE(Causes, nullptr);
  for (const auto &[Name, C] : Causes->members())
    ShareSum += C.get("share")->asDouble();
  EXPECT_NEAR(ShareSum, 1.0, 1e-3)
      << "cause shares must sum to 100% +/- 0.1%";

  const JsonValue *Blocks = V->get("hot_blocks");
  ASSERT_NE(Blocks, nullptr);
  ASSERT_LE(Blocks->array().size(), 10u);
  uint64_t PrevTicks = ~uint64_t(0);
  for (const JsonValue &B : Blocks->array()) {
    uint64_t Instr = B.get("instr_ticks")->asUInt();
    EXPECT_LE(Instr, PrevTicks) << "hot blocks sorted by instrumented cost";
    EXPECT_GE(Instr, B.get("native_ticks")->asUInt())
        << "instrumentation never beats native";
    PrevTicks = Instr;
  }
}

TEST(Profile, FoldedExportIsWellFormed) {
  prof::ProfileCollector Profile;
  runProfiled("gzip", Profile);

  std::string Folded;
  {
    RawStringOstream OS(Folded);
    Profile.writeFolded(OS);
  }
  ASSERT_FALSE(Folded.empty());
  uint64_t FoldedTotal = 0;
  size_t Pos = 0;
  while (Pos < Folded.size()) {
    size_t Eol = Folded.find('\n', Pos);
    ASSERT_NE(Eol, std::string::npos) << "every line newline-terminated";
    std::string Line = Folded.substr(Pos, Eol - Pos);
    // flamegraph.pl format: "frame;frame;frame <count>".
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    std::string Stack = Line.substr(0, Space);
    EXPECT_EQ(Stack.rfind("superpin;", 0), 0u) << Line;
    EXPECT_GE(std::count(Stack.begin(), Stack.end(), ';'), 2) << Line;
    uint64_t Count = std::stoull(Line.substr(Space + 1));
    EXPECT_GT(Count, 0u) << "zero buckets are skipped: " << Line;
    FoldedTotal += Count;
    Pos = Eol + 1;
  }
  EXPECT_EQ(FoldedTotal, Profile.totalConsumed())
      << "folded stacks partition the consumed total";
}

TEST(Profile, StatisticsExportUsesProfNames) {
  prof::ProfileCollector Profile;
  runProfiled("gzip", Profile);
  StatisticRegistry Stats;
  Profile.exportStatistics(Stats);
  EXPECT_EQ(Stats.get("prof.total_ticks"), Profile.totalConsumed());
  EXPECT_EQ(Stats.get("prof.attributed_ticks"), Profile.totalAttributed());
  EXPECT_EQ(Stats.get("prof.cause.jit.execute"),
            Profile.totalCause(prof::Cause::JitExecute));
}

// --- The BENCH_*.json regression gate -------------------------------------

std::string benchDoc(double SlowdownSp, double JitShare) {
  std::string Doc;
  RawStringOstream OS(Doc);
  JsonWriter W(OS);
  W.beginObject();
  W.field("schema", prof::BenchSchema);
  W.key("workloads").beginArray();
  W.beginObject();
  W.field("name", "gzip");
  W.field("slowdown_pin", 2.5);
  W.field("slowdown_sp", SlowdownSp);
  W.key("attribution")
      .beginObject()
      .field("jit.execute", JitShare)
      .field("jit.compile", 1.0 - JitShare)
      .endObject();
  W.endObject();
  W.endArray();
  W.endObject();
  return Doc;
}

JsonValue parsed(const std::string &Text) {
  std::string Err;
  std::optional<JsonValue> V = parseJson(Text, &Err);
  EXPECT_TRUE(V.has_value()) << Err;
  return *V;
}

TEST(BenchGate, PassesWithinThreshold) {
  JsonValue Base = parsed(benchDoc(3.0, 0.50));
  JsonValue Cur = parsed(benchDoc(3.2, 0.52)); // < 10% relative growth
  prof::BenchCompareResult R = prof::compareBenchReports(Base, Cur);
  EXPECT_TRUE(R.ok());
}

TEST(BenchGate, CatchesDeliberatePerturbation) {
  JsonValue Base = parsed(benchDoc(3.0, 0.50));
  // >10% regressions in both the slowdown and an attribution share.
  JsonValue Cur = parsed(benchDoc(3.5, 0.60));
  prof::BenchCompareResult R = prof::compareBenchReports(Base, Cur);
  ASSERT_EQ(R.Regressions.size(), 2u);
  EXPECT_EQ(R.Regressions[0].Metric, "slowdown_sp");
  EXPECT_EQ(R.Regressions[1].Metric, "attribution.jit.execute");

  std::string Printed;
  RawStringOstream OS(Printed);
  prof::printCompareResult(R, OS);
  EXPECT_NE(Printed.find("REGRESSION gzip slowdown_sp"), std::string::npos);
  EXPECT_NE(Printed.find("FAIL"), std::string::npos);
}

TEST(BenchGate, SmallAbsoluteShareMovesAreNotRegressions) {
  // 0.1% -> 0.3% triples the share but moves 0.2 points: below the
  // absolute floor, so not a regression.
  JsonValue Base = parsed(benchDoc(3.0, 0.001));
  JsonValue Cur = parsed(benchDoc(3.0, 0.003));
  prof::BenchCompareResult R = prof::compareBenchReports(Base, Cur);
  EXPECT_TRUE(R.ok());
}

TEST(BenchGate, FailsClosedOnSchemaMismatch) {
  JsonValue Base = parsed("{\"schema\":\"spbench-v0\",\"workloads\":[]}");
  JsonValue Cur = parsed(benchDoc(3.0, 0.5));
  prof::BenchCompareResult R = prof::compareBenchReports(Base, Cur);
  ASSERT_EQ(R.Regressions.size(), 1u);
  EXPECT_EQ(R.Regressions[0].Workload, "baseline");
  EXPECT_EQ(R.Regressions[0].Metric, "schema");
}

TEST(BenchGate, MissingAndNewWorkloadsAreNotes) {
  JsonValue Base = parsed(benchDoc(3.0, 0.5));
  JsonValue Cur = parsed("{\"schema\":\"spbench-v1\",\"workloads\":"
                         "[{\"name\":\"mcf\",\"slowdown_sp\":9.9}]}");
  prof::BenchCompareResult R = prof::compareBenchReports(Base, Cur);
  EXPECT_TRUE(R.ok()) << "coverage changes inform, they do not fail";
  EXPECT_EQ(R.Notes.size(), 2u);
}

} // namespace
