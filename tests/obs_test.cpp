//===- tests/obs_test.cpp - Observability subsystem tests -----------------===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Tests for src/obs and the support pieces under it: the log2 histogram,
// the registry's histogram channel and aligned printing, the span-event
// trace recorder (ring semantics, Chrome trace-event export), the
// schema-stable metrics documents, the golden list of exportStatistics
// names, and the engine/replay trace wiring (balanced spans, consistency
// with the run report, tick-identical reports with tracing on or off).
//
//===----------------------------------------------------------------------===//

#include "obs/HostTraceRecorder.h"
#include "obs/Metrics.h"
#include "obs/TraceRecorder.h"

#include "replay/CaptureWriter.h"
#include "replay/ReplayEngine.h"
#include "superpin/Engine.h"
#include "superpin/Reporting.h"
#include "support/Histogram.h"
#include "support/Json.h"
#include "support/RawOstream.h"
#include "support/Statistic.h"
#include "tools/Icount.h"
#include "workloads/Generator.h"

#include "gtest/gtest.h"

#include <map>
#include <set>

using namespace spin;
using namespace spin::obs;
using namespace spin::sp;
using namespace spin::tools;
using namespace spin::vm;
using namespace spin::workloads;

namespace {

// --- Histogram -----------------------------------------------------------

TEST(Histogram, BucketForEdges) {
  EXPECT_EQ(Histogram::bucketFor(0), 0u);
  EXPECT_EQ(Histogram::bucketFor(1), 1u);
  EXPECT_EQ(Histogram::bucketFor(2), 2u);
  EXPECT_EQ(Histogram::bucketFor(3), 2u);
  EXPECT_EQ(Histogram::bucketFor(4), 3u);
  EXPECT_EQ(Histogram::bucketFor(7), 3u);
  EXPECT_EQ(Histogram::bucketFor(8), 4u);
  EXPECT_EQ(Histogram::bucketFor(uint64_t(1) << 63), 64u);
  EXPECT_EQ(Histogram::bucketFor(~uint64_t(0)), 64u);
}

TEST(Histogram, BucketBoundsTileTheRange) {
  // Every value must fall inside [bucketLow, bucketHigh] of its bucket.
  for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(2), uint64_t(3),
                     uint64_t(1000), uint64_t(1) << 40, ~uint64_t(0)}) {
    unsigned B = Histogram::bucketFor(V);
    EXPECT_GE(V, Histogram::bucketLow(B)) << V;
    EXPECT_LE(V, Histogram::bucketHigh(B)) << V;
  }
}

TEST(Histogram, RecordAndSummaryStats) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u) << "empty histogram min reads as 0";
  for (uint64_t V : {uint64_t(4), uint64_t(6), uint64_t(100), uint64_t(0)})
    H.record(V);
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.sum(), 110u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 100u);
  EXPECT_DOUBLE_EQ(H.mean(), 27.5);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(3), 2u); // 4 and 6
  EXPECT_EQ(H.bucketCount(7), 1u); // 100 in [64,128)
}

TEST(Histogram, QuantileBound) {
  Histogram H;
  for (int I = 0; I != 100; ++I)
    H.record(10); // bucket [8,16)
  H.record(1000); // bucket [512,1024)
  EXPECT_EQ(H.quantileBound(0.50), 15u);
  // The single outlier is the top 1%: p100 lands in its bucket but is
  // clamped to the observed max.
  EXPECT_EQ(H.quantileBound(1.0), 1000u);
  EXPECT_EQ(Histogram().quantileBound(0.5), 0u);
}

TEST(Histogram, MergeAndReset) {
  Histogram A, B;
  A.record(5);
  A.record(9);
  B.record(200);
  A.mergeFrom(B);
  EXPECT_EQ(A.count(), 3u);
  EXPECT_EQ(A.sum(), 214u);
  EXPECT_EQ(A.min(), 5u);
  EXPECT_EQ(A.max(), 200u);
  A.reset();
  EXPECT_EQ(A, Histogram());
}

TEST(Histogram, MergeEmptyCases) {
  Histogram A, Empty;
  A.record(7);
  Histogram B = A;
  B.mergeFrom(Empty); // merging an empty histogram is a no-op
  EXPECT_EQ(B, A);
  // In particular the empty side's min sentinel (~0) must not clobber the
  // real min.
  EXPECT_EQ(B.min(), 7u);
  Histogram C;
  C.mergeFrom(A); // merging into an empty histogram copies the stats
  EXPECT_EQ(C.count(), 1u);
  EXPECT_EQ(C.sum(), 7u);
  EXPECT_EQ(C.min(), 7u);
  EXPECT_EQ(C.max(), 7u);
  EXPECT_EQ(C.bucketCount(Histogram::bucketFor(7)), 1u);
}

TEST(Histogram, MergeSaturatesInsteadOfWrapping) {
  Histogram H;
  H.record(1);
  // 64 self-doublings push count, sum, and the bucket past 2^64: merged
  // totals must pin at the maximum, not wrap around to tiny values.
  for (int I = 0; I != 64; ++I) {
    Histogram Copy = H;
    H.mergeFrom(Copy);
  }
  EXPECT_EQ(H.count(), ~uint64_t(0));
  EXPECT_EQ(H.sum(), ~uint64_t(0));
  EXPECT_EQ(H.bucketCount(1), ~uint64_t(0));
  EXPECT_EQ(H.min(), 1u);
  EXPECT_EQ(H.max(), 1u);
}

// --- StatisticRegistry histograms & aligned print ------------------------

TEST(StatisticRegistry, HistogramChannel) {
  StatisticRegistry Stats;
  Stats.histogram("b.second").record(4);
  Stats.histogram("a.first").record(8);
  Stats.histogram("b.second").record(4);
  ASSERT_EQ(Stats.histogramEntries().size(), 2u);
  // Registration order, not lexicographic.
  EXPECT_EQ(Stats.histogramEntries()[0].Name, "b.second");
  EXPECT_EQ(Stats.histogramEntries()[1].Name, "a.first");
  EXPECT_EQ(Stats.histogram("b.second").count(), 2u);
  EXPECT_EQ(Stats.getHistogram("a.first")->sum(), 8u);
  EXPECT_EQ(Stats.getHistogram("absent"), nullptr);
}

TEST(StatisticRegistry, PrintAlignsValueColumn) {
  StatisticRegistry Stats;
  Stats.counter("x") = 1;
  Stats.counter("a.much.longer.counter.name") = 2;
  Stats.histogram("short.hist").record(3);
  std::string Text;
  RawStringOstream OS(Text);
  Stats.print(OS);
  OS.flush();

  // Every line's payload must start at the same column: name, padding,
  // then the value / summary.
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    Lines.push_back(Text.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  ASSERT_EQ(Lines.size(), 3u);
  size_t Col = std::string::npos;
  for (const std::string &L : Lines) {
    size_t NameEnd = L.find(' ');
    size_t ValueCol = L.find_first_not_of(' ', NameEnd);
    ASSERT_NE(ValueCol, std::string::npos) << L;
    if (Col == std::string::npos)
      Col = ValueCol;
    EXPECT_EQ(ValueCol, Col) << "misaligned line: " << L;
  }
}

// --- TraceRecorder -------------------------------------------------------

TEST(TraceRecorder, RecordsAndSnapshotsInOrder) {
  TraceRecorder Rec(16);
  Rec.begin(0, EventKind::MasterRun, 100);
  Rec.instant(1, EventKind::SliceFork, 200, 7);
  Rec.end(0, EventKind::MasterRun, 300);
  ASSERT_EQ(Rec.size(), 3u);
  EXPECT_EQ(Rec.dropped(), 0u);
  std::vector<TraceEvent> Evs = Rec.snapshot();
  ASSERT_EQ(Evs.size(), 3u);
  EXPECT_EQ(Evs[0].Phase, EventPhase::Begin);
  EXPECT_EQ(Evs[1].Kind, EventKind::SliceFork);
  EXPECT_EQ(Evs[1].Arg, 7u);
  EXPECT_EQ(Evs[2].Ts, 300u);
  EXPECT_EQ(Evs[0].WallNs, 0u) << "wall clock must be off by default";
}

TEST(TraceRecorder, RingOverwritesOldest) {
  TraceRecorder Rec(4);
  for (uint64_t I = 0; I != 10; ++I)
    Rec.instant(0, EventKind::SysService, I * 10, I);
  EXPECT_EQ(Rec.size(), 4u);
  EXPECT_EQ(Rec.capacity(), 4u);
  EXPECT_EQ(Rec.dropped(), 6u);
  std::vector<TraceEvent> Evs = Rec.snapshot();
  ASSERT_EQ(Evs.size(), 4u);
  for (size_t I = 0; I != 4; ++I)
    EXPECT_EQ(Evs[I].Arg, 6 + I) << "snapshot must be oldest-first";
}

TEST(TraceRecorder, ClearForgetsEventsKeepsCapacity) {
  TraceRecorder Rec(8);
  Rec.instant(0, EventKind::SysService, 1);
  Rec.clear();
  EXPECT_EQ(Rec.size(), 0u);
  EXPECT_EQ(Rec.dropped(), 0u);
  EXPECT_EQ(Rec.capacity(), 8u);
  Rec.instant(0, EventKind::SysService, 2, 42);
  EXPECT_EQ(Rec.snapshot().at(0).Arg, 42u);
}

TEST(TraceRecorder, EventNamesAreStable) {
  // These names are the trace schema; renaming one breaks consumers.
  EXPECT_STREQ(eventName(EventKind::MasterRun), "master.run");
  EXPECT_STREQ(eventName(EventKind::MasterStall), "master.stall");
  EXPECT_STREQ(eventName(EventKind::SliceFork), "slice.fork");
  EXPECT_STREQ(eventName(EventKind::SliceSleep), "slice.sleep");
  EXPECT_STREQ(eventName(EventKind::SliceRun), "slice.run");
  EXPECT_STREQ(eventName(EventKind::SigSearch), "sig.search");
  EXPECT_STREQ(eventName(EventKind::SliceMerge), "slice.merge");
  EXPECT_STREQ(eventName(EventKind::DeferSpill), "defer.spill");
  EXPECT_STREQ(eventName(EventKind::DeferDrain), "defer.drain");
  EXPECT_STREQ(eventName(EventKind::SysService), "sys.service");
  EXPECT_STREQ(eventName(EventKind::SysRecord), "sys.record");
  EXPECT_STREQ(eventName(EventKind::SysPlayback), "sys.playback");
  EXPECT_STREQ(eventName(EventKind::JitCompile), "jit.compile");
  EXPECT_STREQ(eventName(EventKind::JitSeed), "jit.seed");
  EXPECT_STREQ(eventName(EventKind::ReplayForward), "replay.forward");
  EXPECT_STREQ(eventName(EventKind::ReplaySlice), "replay.slice");
  EXPECT_STREQ(eventName(EventKind::ReplayParity), "replay.parity");
  EXPECT_STREQ(eventName(EventKind::Parallelism), "sched.parallelism");
  EXPECT_STREQ(eventName(EventKind::WatchdogKill), "fault.watchdogkill");
  EXPECT_STREQ(eventName(EventKind::SliceRetry), "fault.retry");
  EXPECT_STREQ(eventName(EventKind::SliceQuarantine), "fault.quarantine");
  EXPECT_STREQ(eventName(EventKind::PlaybackDivergence), "fault.divergence");
  EXPECT_STREQ(eventName(EventKind::BreakerTrip), "fault.breaker");
}

/// Parses \p Trace's Chrome export and checks the structural invariants:
/// valid JSON, a traceEvents array, and balanced B/E pairs per lane.
/// Returns the parsed document.
JsonValue parseChromeTrace(const TraceRecorder &Trace) {
  std::string Text;
  RawStringOstream OS(Text);
  Trace.writeChromeTrace(OS, os::CostModel().TicksPerMs);
  OS.flush();

  std::string Err;
  std::optional<JsonValue> Doc = parseJson(Text, &Err);
  EXPECT_TRUE(Doc.has_value()) << Err;
  if (!Doc)
    return JsonValue();
  const JsonValue *Events = Doc->get("traceEvents");
  EXPECT_NE(Events, nullptr);
  if (!Events)
    return JsonValue();

  std::map<uint64_t, int64_t> Depth;
  for (const JsonValue &E : Events->array()) {
    const JsonValue *Ph = E.get("ph");
    EXPECT_NE(Ph, nullptr);
    if (!Ph)
      continue;
    uint64_t Tid = E.get("tid") ? E.get("tid")->asUInt() : 0;
    if (Ph->asString() == "B")
      ++Depth[Tid];
    else if (Ph->asString() == "E") {
      --Depth[Tid];
      EXPECT_GE(Depth[Tid], 0) << "E without B on lane " << Tid;
    }
  }
  for (const auto &[Tid, D] : Depth)
    EXPECT_EQ(D, 0) << "unbalanced spans on lane " << Tid;
  return *Doc;
}

TEST(TraceRecorder, ChromeExportIsValidBalancedJson) {
  TraceRecorder Rec;
  Rec.setLaneName(0, "master");
  Rec.setLaneName(1, "slice-0");
  Rec.begin(0, EventKind::MasterRun, 0);
  Rec.instant(0, EventKind::SliceFork, 50, 0);
  Rec.begin(1, EventKind::SliceSleep, 50);
  Rec.end(1, EventKind::SliceSleep, 150);
  Rec.begin(1, EventKind::SliceRun, 150);
  Rec.counter(EventKind::Parallelism, 160, 2);
  Rec.end(1, EventKind::SliceRun, 400, 1234);
  Rec.end(0, EventKind::MasterRun, 500);
  JsonValue Doc = parseChromeTrace(Rec);

  // Lane-name metadata and the counter event must be present.
  const JsonValue *Events = Doc.get("traceEvents");
  ASSERT_NE(Events, nullptr);
  bool SawMasterName = false, SawCounter = false;
  for (const JsonValue &E : Events->array()) {
    const JsonValue *Name = E.get("name");
    if (!Name)
      continue;
    if (Name->asString() == "thread_name" && E.get("args") &&
        E.get("args")->get("name") &&
        E.get("args")->get("name")->asString() == "master")
      SawMasterName = true;
    if (E.get("ph")->asString() == "C" &&
        Name->asString() == "sched.parallelism")
      SawCounter = true;
  }
  EXPECT_TRUE(SawMasterName);
  EXPECT_TRUE(SawCounter);
}

// --- Dual-axis (virtual + host wall-clock) export ------------------------

/// Fills \p Host with \p Workers lanes carrying one body span each plus a
/// queue-depth sample, the shape the dual-axis export sees after a real
/// -spmp run. (Fills in place: the recorder's atomics make it immovable.)
void fillHostRecorder(HostTraceRecorder &Host, unsigned Workers) {
  Host.initLanes(Workers);
  for (unsigned W = 0; W != Workers; ++W) {
    Host.laneStarted(W, 100);
    Host.span(W, HostSpanKind::DispatchWait, 100, 200);
    Host.span(W, HostSpanKind::Body, 200, 900, /*Arg=*/W);
    Host.span(W, HostSpanKind::Retire, 900, 950);
    Host.counter(W, HostCounterKind::QueueDepth, 150, 1);
    Host.laneStopped(W, 1000);
  }
  Host.laneStarted(Host.simLane(), 100);
  Host.span(Host.simLane(), HostSpanKind::SimRetire, 910, 990, 0);
  Host.laneStopped(Host.simLane(), 1000);
}

TEST(TraceRecorder, DualAxisExportIsValidAndBalancedPerTrack) {
  TraceRecorder Rec;
  Rec.setLaneName(0, "master");
  Rec.begin(0, EventKind::MasterRun, 0);
  Rec.end(0, EventKind::MasterRun, 500);
  HostTraceRecorder Host;
  fillHostRecorder(Host, 4);

  std::string Text;
  RawStringOstream OS(Text);
  Rec.writeChromeTrace(OS, os::CostModel().TicksPerMs, &Host);
  OS.flush();

  std::string Err;
  std::optional<JsonValue> Doc = parseJson(Text, &Err);
  ASSERT_TRUE(Doc.has_value()) << Err;
  const JsonValue *Events = Doc->get("traceEvents");
  ASSERT_NE(Events, nullptr);

  // Spans must balance per (pid, tid): host worker tids reuse small
  // integers, so the virtual axis (pid 1) and host axis (pid 2) only
  // separate under the compound key.
  std::map<std::pair<uint64_t, uint64_t>, int64_t> Depth;
  std::set<uint64_t> HostSpanTids;
  bool SawQueueDepth = false, SawHostProcessName = false;
  std::set<std::string> HostSpanNames;
  for (const JsonValue &E : Events->array()) {
    uint64_t Pid = E.get("pid") ? E.get("pid")->asUInt() : 0;
    uint64_t Tid = E.get("tid") ? E.get("tid")->asUInt() : 0;
    const std::string Ph = E.get("ph")->asString();
    if (Ph == "B") {
      ++Depth[{Pid, Tid}];
      if (Pid == 2) {
        HostSpanTids.insert(Tid);
        HostSpanNames.insert(E.get("name")->asString());
      }
    } else if (Ph == "E") {
      int64_t D = --Depth[{Pid, Tid}];
      EXPECT_GE(D, 0);
    } else if (Ph == "C" && Pid == 2 &&
               E.get("name")->asString() == "host.queue.depth") {
      SawQueueDepth = true;
    } else if (Ph == "M" && Pid == 2 &&
               E.get("name")->asString() == "process_name") {
      SawHostProcessName = true;
    }
  }
  for (const auto &[Key, D] : Depth)
    EXPECT_EQ(D, 0) << "unbalanced spans on pid " << Key.first << " tid "
                    << Key.second;
  // 4 worker tracks plus the sim lane.
  EXPECT_EQ(HostSpanTids.size(), 5u);
  EXPECT_TRUE(SawQueueDepth);
  EXPECT_TRUE(SawHostProcessName);
  // Span names round-trip through hostSpanName.
  EXPECT_TRUE(HostSpanNames.count("host.body"));
  EXPECT_TRUE(HostSpanNames.count("host.dispatchwait"));
  EXPECT_TRUE(HostSpanNames.count("host.retire"));
  EXPECT_TRUE(HostSpanNames.count("host.sim.retire"));
}

TEST(TraceRecorder, DualAxisExportKeepsVirtualAxisByteIdentical) {
  // The Host parameter must be purely additive: with it null the export
  // is the exact golden bytes, with it set the virtual-axis prefix is
  // unchanged (dual-axis appends, never rewrites).
  TraceRecorder Rec;
  Rec.setLaneName(0, "master");
  Rec.begin(0, EventKind::MasterRun, 0);
  Rec.instant(0, EventKind::SliceFork, 50, 0);
  Rec.end(0, EventKind::MasterRun, 500);

  std::string Plain, Dual;
  {
    RawStringOstream OS(Plain);
    Rec.writeChromeTrace(OS, os::CostModel().TicksPerMs);
  }
  {
    HostTraceRecorder Host;
    fillHostRecorder(Host, 2);
    RawStringOstream OS(Dual);
    Rec.writeChromeTrace(OS, os::CostModel().TicksPerMs, &Host);
  }
  EXPECT_NE(Plain, Dual);
  // The host axis is appended after the last virtual event: the plain
  // export minus its closing brackets must be a byte-exact prefix of the
  // dual export.
  size_t Close = Plain.rfind(']');
  ASSERT_NE(Close, std::string::npos);
  std::string Prefix = Plain.substr(0, Close);
  EXPECT_EQ(Dual.compare(0, Prefix.size(), Prefix), 0)
      << "dual-axis export rewrote the virtual axis";
}

// --- Metrics documents ---------------------------------------------------

TEST(Metrics, RegistryJsonRoundTrips) {
  StatisticRegistry Stats;
  Stats.counter("a.count") = 7;
  // A value beyond 2^53 must survive the write/parse round trip exactly.
  Stats.counter("big") = (uint64_t(1) << 60) + 3;
  Stats.histogram("h.dist").record(9);
  std::string Text;
  RawStringOstream OS(Text);
  writeRegistryJson(Stats, OS);
  OS.flush();

  std::string Err;
  std::optional<JsonValue> Doc = parseJson(Text, &Err);
  ASSERT_TRUE(Doc.has_value()) << Err;
  EXPECT_EQ(Doc->get("schema")->asString(), MetricsSchema);
  EXPECT_EQ(Doc->get("counters")->get("a.count")->asUInt(), 7u);
  EXPECT_EQ(Doc->get("counters")->get("big")->asUInt(),
            (uint64_t(1) << 60) + 3);
  const JsonValue *H = Doc->get("histograms")->get("h.dist");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->get("count")->asUInt(), 1u);
  EXPECT_EQ(H->get("buckets")->array().size(), 1u);
  EXPECT_EQ(H->get("buckets")->array()[0].get("count")->asUInt(), 1u);
}

// --- Engine integration --------------------------------------------------

Program obsWorkload(uint64_t TargetInsts = 400'000) {
  GenParams P;
  P.Name = "obs";
  P.TargetInsts = TargetInsts;
  P.NumFuncs = 6;
  P.BlocksPerFunc = 6;
  P.AluPerBlock = 3;
  P.WorkingSetBytes = 1 << 14;
  P.SyscallMask = 63;
  P.Mix = SysMix::Mixed;
  return generateWorkload(P);
}

SpOptions obsOptions() {
  SpOptions Opts;
  Opts.SliceMs = 50;
  Opts.PhysCpus = 8;
  Opts.VirtCpus = 8;
  return Opts;
}

os::CostModel Model() { return os::CostModel(); }

/// printReport text — the full deterministic view of a run.
std::string reportText(const SpRunReport &Rep) {
  std::string Text;
  RawStringOstream OS(Text);
  printReport(Rep, os::CostModel(), OS);
  OS.flush();
  return Text;
}

TEST(EngineTrace, ReportIsTickIdenticalWithTracingOn) {
  Program Prog = obsWorkload();
  os::CostModel Model;
  SpRunReport Plain = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), obsOptions(),
      Model);

  TraceRecorder Rec;
  SpOptions Opts = obsOptions();
  Opts.Trace = &Rec;
  SpRunReport Traced = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model);

  EXPECT_EQ(reportText(Plain), reportText(Traced));
  EXPECT_EQ(Plain.WallTicks, Traced.WallTicks);
  EXPECT_GT(Rec.size(), 0u) << "tracing must actually record";
}

TEST(EngineTrace, TraceIsConsistentWithRunReport) {
  Program Prog = obsWorkload();
  TraceRecorder Rec(1 << 18);
  SpOptions Opts = obsOptions();
  Opts.Trace = &Rec;
  SpRunReport Rep = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model());
  ASSERT_GT(Rep.NumSlices, 1u);
  ASSERT_EQ(Rec.dropped(), 0u) << "test capacity must hold the whole run";

  uint64_t Forks = 0, Merges = 0, Records = 0, Playbacks = 0;
  uint64_t LastMergeTs = 0;
  bool MergesOrdered = true;
  for (const TraceEvent &E : Rec.snapshot()) {
    switch (E.Kind) {
    case EventKind::SliceFork:
      ++Forks;
      break;
    case EventKind::SliceMerge:
      ++Merges;
      if (E.Ts < LastMergeTs)
        MergesOrdered = false;
      LastMergeTs = E.Ts;
      break;
    case EventKind::SysRecord:
      ++Records;
      break;
    case EventKind::SysPlayback:
      ++Playbacks;
      break;
    default:
      break;
    }
  }
  EXPECT_EQ(Forks, Rep.NumSlices);
  EXPECT_EQ(Merges, Rep.NumSlices);
  EXPECT_TRUE(MergesOrdered) << "merges must be in nondecreasing time order";
  EXPECT_EQ(Records, Rep.RecordedSyscalls);
  EXPECT_EQ(Playbacks, Rep.PlaybackSyscalls);
  parseChromeTrace(Rec); // balanced spans per lane + valid JSON

  // Every slice that ran has its four histogram samples.
  EXPECT_EQ(Rep.SliceLenHist.count(), Rep.NumSlices);
  EXPECT_EQ(Rep.SliceWaitHist.count(), Rep.NumSlices);
  EXPECT_EQ(Rep.SliceSysRecsHist.count(), Rep.NumSlices);
  EXPECT_EQ(Rep.SliceLenHist.sum(), Rep.MasterInsts)
      << "slice windows must tile the master instruction stream";
}

TEST(EngineTrace, DeferredRunEmitsSpillAndDrain) {
  Program Prog = obsWorkload(800'000);
  TraceRecorder Rec(1 << 18);
  SpOptions Opts = obsOptions();
  Opts.MaxSlices = 2; // Saturate quickly so windows actually spill.
  Opts.DeferSlices = true;
  Opts.Trace = &Rec;
  SpRunReport Rep = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts, Model());
  ASSERT_GT(Rep.SpilledSlices, 0u) << "test must exercise -spdefer";

  uint64_t Spills = 0, Drains = 0;
  for (const TraceEvent &E : Rec.snapshot()) {
    Spills += E.Kind == EventKind::DeferSpill;
    Drains += E.Kind == EventKind::DeferDrain;
  }
  EXPECT_EQ(Spills, Rep.SpilledSlices);
  EXPECT_EQ(Drains, Rep.DrainedSlices);
  parseChromeTrace(Rec);
}

TEST(ReplayTrace, ReplayEmitsBalancedSpansAndParity) {
  Program Prog = obsWorkload();
  replay::CaptureWriter Writer;
  SpOptions Opts = obsOptions();
  Opts.Capture = &Writer;
  runSuperPin(Prog, makeIcountTool(IcountGranularity::BasicBlock), Opts,
              Model());
  replay::RunCapture Cap = Writer.take();
  ASSERT_GT(Cap.Slices.size(), 1u);

  TraceRecorder Rec(1 << 18);
  os::CostModel M;
  replay::ReplayEngine Engine(Cap, M);
  Engine.setTrace(&Rec);
  replay::ReplayReport Rep =
      Engine.replayAll(makeIcountTool(IcountGranularity::BasicBlock));
  EXPECT_TRUE(Rep.allOk());

  uint64_t SliceSpans = 0, ParityOks = 0;
  for (const TraceEvent &E : Rec.snapshot()) {
    SliceSpans += E.Kind == EventKind::ReplaySlice &&
                  E.Phase == EventPhase::Begin;
    ParityOks += E.Kind == EventKind::ReplayParity && E.Arg == 1;
  }
  EXPECT_EQ(SliceSpans, Rep.SlicesReplayed);
  EXPECT_EQ(ParityOks, Rep.ParityOk);
  parseChromeTrace(Rec);
}

// --- Golden metric names -------------------------------------------------

TEST(Reporting, ExportedStatisticNamesAreGolden) {
  SpRunReport Rep;
  StatisticRegistry Stats;
  exportStatistics(Rep, Stats);

  const char *ExpectedCounters[] = {
      "superpin.wall.ticks",      "superpin.wall.native",
      "superpin.wall.forkothers", "superpin.wall.sleep",
      "superpin.wall.pipeline",   "superpin.master.insts",
      "superpin.master.syscalls", "superpin.slices.total",
      "superpin.slices.timeout",  "superpin.slices.syscall",
      "superpin.slices.insts",    "superpin.sys.recorded",
      "superpin.sys.playback",    "superpin.sys.duplicated",
      "superpin.sys.forced",      "superpin.slice.spilled",
      "superpin.slice.drained",   "superpin.replay.parityok",
      "superpin.sig.quick",       "superpin.sig.full",
      "superpin.sig.stack",       "superpin.sig.matches",
      "superpin.jit.traces",      "superpin.jit.ticks",
      "superpin.jit.seeded",      "superpin.jit.seedticks",
      "superpin.redux.suppressed", "superpin.redux.flushes",
      "superpin.redux.recompiled", "superpin.redux.recompileticks",
      "superpin.redux.savedticks",
      "superpin.static.sites",    "superpin.sys.predicted",
      "superpin.sys.trapclassified", "superpin.cow.master",
      "superpin.cow.slices",         "superpin.fault.injected",
      "superpin.fault.watchdogkills", "superpin.fault.divergences",
      "superpin.fault.reexecsys",    "superpin.fault.retried",
      "superpin.fault.recovered",    "superpin.fault.quarantined",
      "superpin.fault.lost",         "superpin.fault.wastedinsts",
      "superpin.fault.coverageinsts", "superpin.fault.breakertripped",
  };
  ASSERT_EQ(Stats.entries().size(), std::size(ExpectedCounters));
  size_t I = 0;
  for (const StatisticRegistry::Entry &E : Stats.entries())
    EXPECT_EQ(E.Name, ExpectedCounters[I++]) << "counter order changed";

  const char *ExpectedHists[] = {
      "superpin.hist.slice.insts",
      "superpin.hist.slice.sysrecs",
      "superpin.hist.slice.waitticks",
      "superpin.hist.sig.checkdist",
      "superpin.hist.slice.attempts",
  };
  ASSERT_EQ(Stats.histogramEntries().size(), std::size(ExpectedHists));
  I = 0;
  for (const StatisticRegistry::HistEntry &H : Stats.histogramEntries())
    EXPECT_EQ(H.Name, ExpectedHists[I++]) << "histogram order changed";
}

TEST(Reporting, HostStatisticsAppearOnlyOnHostRuns) {
  // The default name set above must not change when host fields are
  // populated only as far as serial runs populate them; the host.* block
  // appears exactly when HostWorkers is set.
  SpRunReport Serial;
  StatisticRegistry SerialStats;
  exportStatistics(Serial, SerialStats);
  for (const StatisticRegistry::Entry &E : SerialStats.entries())
    EXPECT_EQ(E.Name.find("host."), std::string::npos);

  SpRunReport Rep;
  Rep.HostWorkers = 2;
  Rep.HostDispatchedSlices = 7;
  Rep.HostStreamEvents = 100;
  Rep.HostArenaBytes = 4096;
  Rep.HostBodySeconds = 0.5;
  obs::HostLaneAttribution L;
  L.Worker = 0;
  L.BodyNs = 600;
  L.DispatchWaitNs = 100;
  L.MergeWaitNs = 100;
  L.IdleNs = 150;
  L.RetireNs = 50;
  L.LifetimeNs = 1000;
  Rep.HostAttr.Workers.push_back(L);
  Rep.HostAttr.PoolLifetimeNs = 1000;
  Rep.HostUtilizationHist.record(60);

  StatisticRegistry Stats;
  exportStatistics(Rep, Stats);
  std::map<std::string, uint64_t> ByName;
  for (const StatisticRegistry::Entry &E : Stats.entries())
    ByName[E.Name] = E.Value;
  EXPECT_EQ(ByName.at("host.workers"), 2u);
  EXPECT_EQ(ByName.at("host.dispatched.slices"), 7u);
  EXPECT_EQ(ByName.at("host.stream.events"), 100u);
  EXPECT_EQ(ByName.at("host.arena.peakbytes"), 4096u);
  EXPECT_EQ(ByName.at("host.pool.lifetime.ns"), 1000u);
  EXPECT_EQ(ByName.at("host.attr.body.ns"), 600u);
  EXPECT_EQ(ByName.at("host.attr.dispatchwait.ns"), 100u);
  EXPECT_EQ(ByName.at("host.attr.mergewait.ns"), 100u);
  EXPECT_EQ(ByName.at("host.attr.idle.ns"), 150u);
  EXPECT_EQ(ByName.at("host.attr.retire.ns"), 50u);
  bool SawHist = false;
  for (const StatisticRegistry::HistEntry &H : Stats.histogramEntries())
    if (H.Name == "superpin.hist.host.utilization")
      SawHist = true;
  EXPECT_TRUE(SawHist);
}

TEST(Reporting, RunMetricsJsonParsesAndMatchesReport) {
  Program Prog = obsWorkload();
  SpRunReport Rep = runSuperPin(
      Prog, makeIcountTool(IcountGranularity::BasicBlock), obsOptions(),
      Model());
  std::string Text;
  RawStringOstream OS(Text);
  writeRunMetricsJson(Rep, Model(), OS);
  OS.flush();

  std::string Err;
  std::optional<JsonValue> Doc = parseJson(Text, &Err);
  ASSERT_TRUE(Doc.has_value()) << Err;
  EXPECT_EQ(Doc->get("schema")->asString(), MetricsSchema);
  EXPECT_EQ(Doc->get("counters")->get("superpin.wall.ticks")->asUInt(),
            Rep.WallTicks);
  EXPECT_EQ(Doc->get("counters")->get("superpin.slices.total")->asUInt(),
            Rep.NumSlices);
  const JsonValue *Hists = Doc->get("histograms");
  ASSERT_NE(Hists, nullptr);
  EXPECT_EQ(Hists->get("superpin.hist.slice.insts")->get("count")->asUInt(),
            Rep.NumSlices);
  const JsonValue *Phases = Doc->get("phases");
  ASSERT_NE(Phases, nullptr);
  ASSERT_EQ(Phases->array().size(), 5u);
  EXPECT_EQ(Phases->array()[0].get("name")->asString(), "wall");
  EXPECT_EQ(Phases->array()[0].get("ticks")->asUInt(), Rep.WallTicks);
}

// --- printTimeline degenerate runs (regression) --------------------------

TEST(Reporting, TimelineHandlesZeroWallTicks) {
  SpRunReport Rep; // WallTicks == 0: previously rendered nothing.
  SliceInfo S;
  Rep.Slices.push_back(S);
  std::string Text;
  RawStringOstream OS(Text);
  printTimeline(Rep, Model(), OS);
  OS.flush();
  EXPECT_NE(Text.find("timeline"), std::string::npos)
      << "zero-length run must still render a degenerate timeline";
  EXPECT_NE(Text.find("master"), std::string::npos);
  EXPECT_NE(Text.find("S1"), std::string::npos);
}

} // namespace
