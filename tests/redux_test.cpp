//===- tests/redux_test.cpp - Redundancy-suppression integration tests ----===//
//
// Part of the SuperPin reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// End-to-end coverage for -spredux (PinVmConfig::Redux / SpOptions::Redux):
// the on/off byte-identical tool-output matrix across workloads x tools on
// both the serial-Pin and SuperPin paths, the suppression/recompile
// counters, and the runtime conservatism regressions (stateful tools,
// irreducible regions, and composite vetoes suppress nothing).
//
//===----------------------------------------------------------------------===//

#include "analysis/Passes.h"
#include "analysis/Redundancy.h"
#include "pin/Runner.h"
#include "superpin/Engine.h"
#include "tools/BranchProfile.h"
#include "tools/Composite.h"
#include "tools/DCache.h"
#include "tools/Icount.h"
#include "tools/MemTrace.h"
#include "tools/OpcodeMix.h"
#include "workloads/Spec2000.h"

#include "TestPrograms.h"
#include "gtest/gtest.h"

#include <functional>
#include <memory>
#include <vector>

using namespace spin;
using namespace spin::analysis;
using namespace spin::os;
using namespace spin::pin;
using namespace spin::sp;
using namespace spin::test;
using namespace spin::tools;
using namespace spin::vm;
using namespace spin::workloads;

namespace {

/// Tools carry run-local state (e.g. memtrace's shared result log), so
/// every run gets a freshly made factory, never a reused one.
using FactoryMaker = std::function<ToolFactory()>;

struct NamedTool {
  const char *Name;
  FactoryMaker Make;
  bool Suppressible; ///< instrKind() != Stateful
};

std::vector<NamedTool> toolMatrix() {
  return {
      {"icount-inst",
       [] { return makeIcountTool(IcountGranularity::Instruction); }, true},
      {"icount-bb",
       [] { return makeIcountTool(IcountGranularity::BasicBlock); }, true},
      {"opcodemix", [] { return makeOpcodeMixTool(); }, true},
      {"branchprofile", [] { return makeBranchProfileTool(); }, true},
      {"dcache", [] { return makeDCacheTool(DCacheConfig()); }, false},
      {"memtrace",
       [] { return makeMemTraceTool(std::make_shared<MemTraceResult>()); },
       false},
  };
}

struct NamedProgram {
  const char *Name;
  Program Prog;
};

std::vector<NamedProgram> workloadMatrix() {
  std::vector<NamedProgram> W;
  W.push_back({"countdown", makeCountdown(2000)});
  W.push_back({"nested", makeNestedLoops(60, 40)});
  W.push_back({"memcounter", makeMemCounterLoop(500)});
  W.push_back({"sharedheader", makeSharedHeaderLoop(200)});
  W.push_back({"irreducible", makeIrreducible()});
  return W;
}

/// A generated workload with calls and mixed syscalls: exercises the
/// flush-at-syscall boundary and realistic (mostly stateful) loops.
Program generatedWorkload() {
  GenParams P;
  P.Name = "redux-gen";
  P.TargetInsts = 200'000;
  P.NumFuncs = 4;
  P.BlocksPerFunc = 4;
  P.AluPerBlock = 3;
  P.WorkingSetBytes = 1 << 14;
  P.SyscallMask = 15;
  P.Mix = SysMix::Mixed;
  return generateWorkload(P);
}

// --- Serial path ---------------------------------------------------------

TEST(Redux, SerialMatrixIsByteIdentical) {
  CostModel Model;
  for (const NamedProgram &W : workloadMatrix()) {
    Cfg G = buildCfg(W.Prog);
    RedundancyInfo RI(G);
    for (const NamedTool &T : toolMatrix()) {
      RunReport Off =
          runSerialPin(W.Prog, Model, Model.TicksPerInst, T.Make());
      PinVmConfig Config;
      Config.Redux = &RI;
      RunReport On =
          runSerialPin(W.Prog, Model, Model.TicksPerInst, T.Make(), Config);
      SCOPED_TRACE(std::string(W.Name) + " x " + T.Name);
      EXPECT_EQ(On.FiniOutput, Off.FiniOutput);
      EXPECT_EQ(On.Output, Off.Output);
      EXPECT_EQ(On.Insts, Off.Insts);
      EXPECT_EQ(On.ExitCode, Off.ExitCode);
      EXPECT_EQ(Off.CallsSuppressed, 0u) << "off run must not suppress";
      if (!T.Suppressible)
        EXPECT_EQ(On.CallsSuppressed, 0u) << "stateful tools are exempt";
    }
  }
}

TEST(Redux, SuppressionEngagesOnHotSelfLoop) {
  CostModel Model;
  Program P = makeCountdown(5000);
  Cfg G = buildCfg(P);
  RedundancyInfo RI(G);
  PinVmConfig Config;
  Config.Redux = &RI;
  RunReport On = runSerialPin(P, Model, Model.TicksPerInst,
                              makeIcountTool(IcountGranularity::Instruction),
                              Config);
  RunReport Off = runSerialPin(
      P, Model, Model.TicksPerInst,
      makeIcountTool(IcountGranularity::Instruction));
  EXPECT_EQ(On.FiniOutput, Off.FiniOutput);
  EXPECT_GT(On.TracesRecompiled, 0u) << "hot trace must recompile";
  EXPECT_GT(On.RecompileTicks, 0u);
  EXPECT_GT(On.CallsSuppressed, 0u);
  EXPECT_GT(On.ReduxFlushes, 0u) << "deferred calls must be replayed";
  EXPECT_GT(On.ReduxSavedTicks, 0u);
  EXPECT_LT(On.CpuTicks, Off.CpuTicks)
      << "suppression must actually cut instrumentation work";
}

TEST(Redux, ColdTracesAreNeverRecompiled) {
  // Fewer loop iterations than the hot threshold: classification exists
  // but no trace ever crosses the recompile bar, so nothing changes.
  CostModel Model;
  Program P = makeCountdown(4);
  Cfg G = buildCfg(P);
  RedundancyInfo RI(G);
  PinVmConfig Config;
  Config.Redux = &RI;
  Config.ReduxHotThreshold = 1000;
  RunReport On = runSerialPin(P, Model, Model.TicksPerInst,
                              makeIcountTool(IcountGranularity::Instruction),
                              Config);
  EXPECT_EQ(On.TracesRecompiled, 0u);
  EXPECT_EQ(On.CallsSuppressed, 0u);
}

TEST(Redux, IrreducibleRegionSuppressesNothingAtRuntime) {
  // Force immediate recompilation (threshold 1) so the conservative
  // classification — not coldness — is what prevents suppression.
  CostModel Model;
  Program P = makeIrreducible();
  Cfg G = buildCfg(P);
  RedundancyInfo RI(G);
  ASSERT_EQ(RI.numSuppressibleBlocks(), 0u);
  PinVmConfig Config;
  Config.Redux = &RI;
  Config.ReduxHotThreshold = 1;
  RunReport On = runSerialPin(P, Model, Model.TicksPerInst,
                              makeIcountTool(IcountGranularity::Instruction),
                              Config);
  RunReport Off = runSerialPin(
      P, Model, Model.TicksPerInst,
      makeIcountTool(IcountGranularity::Instruction));
  EXPECT_GT(On.TracesRecompiled, 0u);
  EXPECT_EQ(On.CallsSuppressed, 0u);
  EXPECT_EQ(On.FiniOutput, Off.FiniOutput);
}

TEST(Redux, CompositeWithStatefulMemberIsExempt) {
  CostModel Model;
  Program P = makeCountdown(1000);
  Cfg G = buildCfg(P);
  RedundancyInfo RI(G);
  auto MakeComposite = [] {
    std::vector<ToolFactory> Subs;
    Subs.push_back(makeIcountTool(IcountGranularity::Instruction));
    Subs.push_back(makeMemTraceTool(std::make_shared<MemTraceResult>()));
    return makeCompositeTool(std::move(Subs));
  };
  PinVmConfig Config;
  Config.Redux = &RI;
  Config.ReduxHotThreshold = 1;
  RunReport On =
      runSerialPin(P, Model, Model.TicksPerInst, MakeComposite(), Config);
  RunReport Off =
      runSerialPin(P, Model, Model.TicksPerInst, MakeComposite());
  EXPECT_EQ(On.CallsSuppressed, 0u)
      << "one stateful sub-tool vetoes the whole composite";
  EXPECT_EQ(On.FiniOutput, Off.FiniOutput);
}

TEST(Redux, SyscallsFlushMidRun) {
  // A generated workload with syscalls sprinkled through the code: every
  // syscall is a tool-observable boundary, so output must match exactly
  // even though flushes happen mid-run, not just at exit.
  CostModel Model;
  Program P = generatedWorkload();
  Cfg G = buildCfg(P);
  RedundancyInfo RI(G);
  PinVmConfig Config;
  Config.Redux = &RI;
  Config.ReduxHotThreshold = 1;
  for (const NamedTool &T : toolMatrix()) {
    RunReport Off = runSerialPin(P, Model, Model.TicksPerInst, T.Make());
    RunReport On =
        runSerialPin(P, Model, Model.TicksPerInst, T.Make(), Config);
    SCOPED_TRACE(T.Name);
    EXPECT_EQ(On.FiniOutput, Off.FiniOutput);
    EXPECT_EQ(On.Syscalls, Off.Syscalls);
  }
}

// --- SuperPin path -------------------------------------------------------

SpOptions fastOptions() {
  SpOptions Opts;
  Opts.SliceMs = 50;
  return Opts;
}

TEST(Redux, SuperPinMatrixIsByteIdentical) {
  CostModel Model;
  std::vector<NamedProgram> Programs;
  Programs.push_back({"generated", generatedWorkload()});
  Programs.push_back({"countdown", makeCountdown(2000)});
  Programs.push_back({"nested", makeNestedLoops(60, 40)});
  for (const NamedProgram &W : Programs) {
    for (const NamedTool &T : toolMatrix()) {
      SpOptions Off = fastOptions();
      SpRunReport A = runSuperPin(W.Prog, T.Make(), Off, Model);
      SpOptions On = fastOptions();
      On.Redux = true;
      SpRunReport B = runSuperPin(W.Prog, T.Make(), On, Model);
      SCOPED_TRACE(std::string(W.Name) + " x " + T.Name);
      EXPECT_EQ(B.FiniOutput, A.FiniOutput);
      EXPECT_EQ(B.Output, A.Output);
      EXPECT_EQ(B.SliceInsts, A.SliceInsts);
      EXPECT_EQ(B.NumSlices, A.NumSlices);
      EXPECT_TRUE(B.PartitionOk);
      EXPECT_EQ(A.CallsSuppressed, 0u);
    }
  }
}

TEST(Redux, SuperPinCountersFlowIntoReport) {
  CostModel Model;
  Program P = makeCountdown(5000);
  SpOptions On = fastOptions();
  On.Redux = true;
  SpRunReport R = runSuperPin(
      P, makeIcountTool(IcountGranularity::Instruction), On, Model);
  EXPECT_GT(R.TracesRecompiled, 0u);
  EXPECT_GT(R.CallsSuppressed, 0u);
  EXPECT_GT(R.ReduxFlushes, 0u);
  EXPECT_GT(R.ReduxSavedTicks, 0u);
}

} // namespace
